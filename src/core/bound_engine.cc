#include "core/bound_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "social/transition_matrix.h"  // kMaxFrontierLanes

namespace s3::core {

namespace {

// L-lane reverse-index fold: one CSR-entry walk streams every lane
// (kw[sums[i]*L + l] += w_i * d[l]). Per lane this is exactly the
// scalar ApplyDelta sequence — entry order i is lane-independent — so
// batched partial sums stay bit-for-bit the single-seeker sums.
template <int L>
void FoldRevT(const uint32_t* sums, const float* ws, size_t n,
              const double* __restrict d, double* __restrict kw) {
  for (size_t i = 0; i < n; ++i) {
    double* __restrict o = kw + static_cast<size_t>(sums[i]) * L;
    const double w = static_cast<double>(ws[i]);
    for (int l = 0; l < L; ++l) o[l] += w * d[l];
  }
}

void FoldRev(size_t lanes, const uint32_t* sums, const float* ws, size_t n,
             const double* d, double* kw) {
  switch (lanes) {
    case 1: return FoldRevT<1>(sums, ws, n, d, kw);
    case 2: return FoldRevT<2>(sums, ws, n, d, kw);
    case 4: return FoldRevT<4>(sums, ws, n, d, kw);
    case 8: return FoldRevT<8>(sums, ws, n, d, kw);
    default:
      for (size_t i = 0; i < n; ++i) {
        double* o = kw + static_cast<size_t>(sums[i]) * lanes;
        const double w = static_cast<double>(ws[i]);
        for (size_t c = 0; c + 4 <= lanes; c += 4) {
          for (int l = 0; l < 4; ++l) o[c + l] += w * d[c + l];
        }
      }
  }
}

}  // namespace

CandidateBoundEngine::CandidateBoundEngine(
    const doc::DocumentStore& docs, size_t n_keywords, uint32_t total_rows,
    const std::vector<ComponentCandidates>& per_comp, size_t lanes)
    : n_keywords_(n_keywords), lanes_(lanes) {
  assert(lanes_ >= 1 && lanes_ <= social::kMaxFrontierLanes);
  size_t n_cands = 0;
  size_t n_entries = 0;
  for (const ComponentCandidates& cc : per_comp) {
    n_cands += cc.candidates.size();
    for (const Candidate& c : cc.candidates) {
      for (const auto& per_kw : c.sources) n_entries += per_kw.size();
    }
  }

  node_.reserve(n_cands);
  comp_slot_.reserve(n_cands);
  alive_.assign(n_cands * lanes_, 1);
  kw_sum_.assign(n_cands * n_keywords_ * lanes_, 0.0);
  kw_w_.reserve(n_cands * n_keywords_);
  lower_.assign(n_cands * lanes_, 0.0);
  upper_.assign(n_cands * lanes_, 0.0);
  slot_cands_.resize(per_comp.size());
  src_begin_.reserve(n_cands * n_keywords_ + 1);
  src_begin_.push_back(0);
  src_rows_.reserve(n_entries);
  src_w_.reserve(n_entries);

  for (size_t slot = 0; slot < per_comp.size(); ++slot) {
    for (const Candidate& c : per_comp[slot].candidates) {
      const uint32_t ci = static_cast<uint32_t>(node_.size());
      slot_cands_[slot].push_back(ci);
      node_.push_back(c.node);
      comp_slot_.push_back(static_cast<uint32_t>(slot));
      for (size_t qi = 0; qi < n_keywords_; ++qi) {
        double w_total = 0.0;
        for (const auto& [src, w] : c.sources[qi]) {
          src_rows_.push_back(src);
          src_w_.push_back(w);
          w_total += static_cast<double>(w);
        }
        kw_w_.push_back(w_total);
        src_begin_.push_back(src_rows_.size());
      }
    }
  }

  // Reverse index by counting sort over source rows.
  rev_ptr_.assign(static_cast<size_t>(total_rows) + 1, 0);
  for (uint32_t row : src_rows_) ++rev_ptr_[row + 1];
  for (uint32_t r = 0; r < total_rows; ++r) rev_ptr_[r + 1] += rev_ptr_[r];
  rev_sum_.resize(src_rows_.size());
  rev_w_.resize(src_rows_.size());
  std::vector<uint64_t> cursor(rev_ptr_.begin(), rev_ptr_.end() - 1);
  for (size_t sum_idx = 0; sum_idx < n_cands * n_keywords_; ++sum_idx) {
    for (uint64_t i = src_begin_[sum_idx]; i < src_begin_[sum_idx + 1];
         ++i) {
      const uint64_t pos = cursor[src_rows_[i]]++;
      rev_sum_[pos] = static_cast<uint32_t>(sum_idx);
      rev_w_[pos] = src_w_[i];
    }
  }

  for (uint32_t row = 0; row < total_rows; ++row) {
    if (rev_ptr_[row + 1] > rev_ptr_[row]) source_rows_.push_back(row);
  }

  // Component-sharded views. The flatten above is slot-ordered, so
  // candidate ids partition into per-slot ranges.
  const size_t n_slots = per_comp.size();
  slot_cand_begin_.assign(n_slots + 1, 0);
  for (size_t slot = 0; slot < n_slots; ++slot) {
    slot_cand_begin_[slot + 1] =
        slot_cand_begin_[slot] +
        static_cast<uint32_t>(per_comp[slot].candidates.size());
  }

  // Shard the reverse index by slot. Each row's rev entries are in
  // ascending sum-index order (the counting sort fills them that way)
  // and sums are slot-contiguous, so per row the slot runs are
  // contiguous with strictly increasing slot. Iterating rows ascending
  // in both passes keeps each slot's row list ascending — which is
  // what makes the per-slot fold order match the global fold order.
  slot_fold_ptr_.assign(n_slots + 1, 0);
  slot_rev_entries_.assign(n_slots, 0);
  auto for_each_slot_run = [&](auto&& visit) {
    for (uint32_t row : source_rows_) {
      uint64_t i = rev_ptr_[row];
      const uint64_t end = rev_ptr_[row + 1];
      while (i < end) {
        const uint32_t slot = comp_slot_[rev_sum_[i] / n_keywords_];
        uint64_t j = i + 1;
        while (j < end && comp_slot_[rev_sum_[j] / n_keywords_] == slot) {
          ++j;
        }
        visit(slot, row, i, j);
        i = j;
      }
    }
  };
  for_each_slot_run([&](uint32_t slot, uint32_t, uint64_t i, uint64_t j) {
    ++slot_fold_ptr_[slot + 1];
    slot_rev_entries_[slot] += j - i;
  });
  for (size_t s = 0; s < n_slots; ++s) {
    slot_fold_ptr_[s + 1] += slot_fold_ptr_[s];
  }
  slot_fold_row_.resize(slot_fold_ptr_[n_slots]);
  slot_fold_begin_.resize(slot_fold_ptr_[n_slots]);
  slot_fold_end_.resize(slot_fold_ptr_[n_slots]);
  std::vector<uint64_t> fold_cursor(slot_fold_ptr_.begin(),
                                    slot_fold_ptr_.end() - 1);
  for_each_slot_run(
      [&](uint32_t slot, uint32_t row, uint64_t i, uint64_t j) {
        const uint64_t pos = fold_cursor[slot]++;
        slot_fold_row_[pos] = row;
        slot_fold_begin_[pos] = i;
        slot_fold_end_[pos] = j;
      });

  // Doc groups and vertical-neighbor adjacency. Only candidates of the
  // same document can be vertical neighbors, so group by DocId once and
  // test ancestry only within groups.
  std::unordered_map<doc::DocId, std::vector<uint32_t>> by_doc;
  for (uint32_t ci = 0; ci < n_cands; ++ci) {
    by_doc[docs.DocOf(node_[ci])].push_back(ci);
  }
  std::vector<std::vector<uint32_t>> nbrs(n_cands);
  for (const auto& [d, group] : by_doc) {
    if (group.size() < 2) continue;
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        uint32_t a = group[i], b = group[j];
        if (docs.AreVerticalNeighbors(node_[a], node_[b])) {
          nbrs[a].push_back(b);
          nbrs[b].push_back(a);
          nbr_pairs_.emplace_back(std::min(a, b), std::max(a, b));
        }
      }
    }
  }
  std::sort(nbr_pairs_.begin(), nbr_pairs_.end());
  // Vertical neighbors share a document and a document lives in one
  // component, so no pair spans slots; sorted by (a, b) over
  // slot-contiguous ids, pairs group contiguously in slot order.
  slot_pair_begin_.assign(n_slots + 1, 0);
  for (const auto& [a, b] : nbr_pairs_) {
    (void)b;
    ++slot_pair_begin_[comp_slot_[a] + 1];
  }
  for (size_t s = 0; s < n_slots; ++s) {
    slot_pair_begin_[s + 1] += slot_pair_begin_[s];
  }
  nbr_begin_.assign(n_cands + 1, 0);
  for (uint32_t ci = 0; ci < n_cands; ++ci) {
    nbr_begin_[ci + 1] =
        nbr_begin_[ci] + static_cast<uint32_t>(nbrs[ci].size());
  }
  nbr_list_.reserve(nbr_pairs_.size() * 2);
  for (uint32_t ci = 0; ci < n_cands; ++ci) {
    std::sort(nbrs[ci].begin(), nbrs[ci].end());
    nbr_list_.insert(nbr_list_.end(), nbrs[ci].begin(), nbrs[ci].end());
  }

  active_.assign(n_cands * lanes_, 0);
  active_lists_.resize(lanes_);
  for (auto& list : active_lists_) list.reserve(n_cands);
  union_active_.assign(n_cands, 0);
  union_list_.reserve(n_cands);
  mark_.assign(n_cands, 0);
}

void CandidateBoundEngine::ActivateSlot(uint32_t slot, size_t lane) {
  for (uint32_t ci : slot_cands_[slot]) {
    if (!active_[ci * lanes_ + lane]) {
      active_[ci * lanes_ + lane] = 1;
      active_lists_[lane].push_back(ci);
      if (!union_active_[ci]) {
        union_active_[ci] = 1;
        union_list_.push_back(ci);
      }
    }
  }
}

void CandidateBoundEngine::ApplyDeltaBatch(uint32_t row,
                                           const double* deltas) {
  const uint64_t begin = rev_ptr_[row];
  FoldRev(lanes_, rev_sum_.data() + begin, rev_w_.data() + begin,
          rev_ptr_[row + 1] - begin, deltas, kw_sum_.data());
}

void CandidateBoundEngine::RefreshOne(uint32_t ci, const double* tails) {
  // Bounds are recomputed for every lane (alive or not, active in
  // this lane or not): they are a pure function of the partial sums
  // and the lane tail, and only alive+active lanes are ever read.
  const size_t L = lanes_;
  double lo[social::kMaxFrontierLanes], up[social::kMaxFrontierLanes];
  for (size_t l = 0; l < L; ++l) {
    lo[l] = 1.0;
    up[l] = 1.0;
  }
  const size_t base = static_cast<size_t>(ci) * n_keywords_;
  for (size_t qi = 0; qi < n_keywords_; ++qi) {
    const double* s = &kw_sum_[(base + qi) * L];
    const double w = kw_w_[base + qi];
    for (size_t l = 0; l < L; ++l) {
      lo[l] *= s[l];
      // W caps the sum (prox ≤ 1 per source); max(s, ·) shields the
      // interval against prox marginally overshooting 1 in floating
      // point, which would otherwise let upper dip below lower.
      up[l] *= std::max(s[l], std::min(w, s[l] + w * tails[l]));
    }
  }
  for (size_t l = 0; l < L; ++l) {
    lower_[ci * L + l] = lo[l];
    upper_[ci * L + l] = up[l];
  }
}

void CandidateBoundEngine::RefreshBoundsBatch(const double* tails,
                                              ThreadPool* pool) {
  auto refresh = [&](size_t i) { RefreshOne(union_list_[i], tails); };
  const size_t n = union_list_.size();
  if (pool != nullptr && n >= 512) {
    pool->ParallelFor(n, refresh);
  } else {
    for (size_t i = 0; i < n; ++i) refresh(i);
  }
}

void CandidateBoundEngine::RefreshBoundsSlot(uint32_t slot,
                                             const double* tails) {
  // The caller gates on "slot discovered in some lane", which makes
  // the union over slots of these ranges exactly union_list_'s
  // membership (ActivateSlot activates whole slots). RefreshOne is a
  // pure per-candidate function, so membership equality gives bitwise
  // equality with RefreshBoundsBatch regardless of order.
  for (uint32_t ci = slot_cand_begin_[slot]; ci < slot_cand_begin_[slot + 1];
       ++ci) {
    RefreshOne(ci, tails);
  }
}

void CandidateBoundEngine::FoldFrontierSlot(uint32_t slot,
                                            const double* frontier_values,
                                            double factor) {
  const size_t L = lanes_;
  double d[social::kMaxFrontierLanes];
  for (uint64_t e = slot_fold_ptr_[slot]; e < slot_fold_ptr_[slot + 1];
       ++e) {
    const uint32_t row = slot_fold_row_[e];
    const double* v = frontier_values + static_cast<size_t>(row) * L;
    bool any = false;
    for (size_t l = 0; l < L; ++l) {
      d[l] = factor * v[l];
      any = any || d[l] != 0.0;
    }
    // Skipping an all-zero row is bitwise inert: the sums only ever
    // accumulate non-negative terms, so s + w·0.0 == s exactly.
    if (!any) continue;
    const uint64_t begin = slot_fold_begin_[e];
    FoldRev(L, rev_sum_.data() + begin, rev_w_.data() + begin,
            slot_fold_end_[e] - begin, d, kw_sum_.data());
  }
}

void CandidateBoundEngine::RefreshBounds(double tail, ThreadPool* pool) {
  double tails[social::kMaxFrontierLanes];
  for (size_t l = 0; l < lanes_; ++l) tails[l] = tail;
  RefreshBoundsBatch(tails, pool);
}

size_t CandidateBoundEngine::CleanPairRange(size_t begin, size_t end,
                                            double epsilon, size_t lane) {
  const size_t L = lanes_;
  size_t killed = 0;
  auto dominates = [&](uint32_t b, uint32_t a) {
    return lower_[b * L + lane] > upper_[a * L + lane] + epsilon ||
           (std::abs(lower_[b * L + lane] - upper_[a * L + lane]) <=
                epsilon &&
            lower_[b * L + lane] >= upper_[b * L + lane] - epsilon &&
            node_[b] < node_[a]);
  };
  for (size_t p = begin; p < end; ++p) {
    const auto& [a, b] = nbr_pairs_[p];
    if (!active_[a * L + lane] || !active_[b * L + lane]) continue;
    if (!alive_[a * L + lane] || !alive_[b * L + lane]) continue;
    if (dominates(b, a)) {
      alive_[a * L + lane] = 0;
      ++killed;
    } else if (dominates(a, b)) {
      alive_[b * L + lane] = 0;
      ++killed;
    }
  }
  return killed;
}

size_t CandidateBoundEngine::CleanDominated(double epsilon, size_t lane) {
  return CleanPairRange(0, nbr_pairs_.size(), epsilon, lane);
}

size_t CandidateBoundEngine::CleanDominatedSlot(uint32_t slot,
                                                double epsilon,
                                                size_t lane) {
  // In-slot pair order is the global pass's order (a kill earlier in
  // the pass gates later dominance tests, so order matters); pairs
  // never span slots, so the global scan is the concatenation of the
  // per-slot scans and the kill sets are slot-disjoint.
  return CleanPairRange(slot_pair_begin_[slot], slot_pair_begin_[slot + 1],
                        epsilon, lane);
}

bool CandidateBoundEngine::AnyNeighborPair(
    const std::vector<uint32_t>& order, size_t count) {
  ++mark_epoch_;
  for (size_t i = 0; i < count; ++i) mark_[order[i]] = mark_epoch_;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t ci = order[i];
    for (uint32_t j = nbr_begin_[ci]; j < nbr_begin_[ci + 1]; ++j) {
      if (mark_[nbr_list_[j]] == mark_epoch_) return true;
    }
  }
  return false;
}

std::vector<uint32_t> CandidateBoundEngine::GreedyTopK(
    const std::vector<uint32_t>& order, size_t k, size_t lane) {
  std::vector<uint32_t> picked;
  if (k == 0) return picked;
  ++mark_epoch_;
  for (uint32_t ci : order) {
    if (!alive_[ci * lanes_ + lane]) continue;
    bool conflict = false;
    for (uint32_t j = nbr_begin_[ci]; j < nbr_begin_[ci + 1]; ++j) {
      if (mark_[nbr_list_[j]] == mark_epoch_) {
        conflict = true;
        break;
      }
    }
    if (!conflict) {
      mark_[ci] = mark_epoch_;
      picked.push_back(ci);
      if (picked.size() == k) break;
    }
  }
  return picked;
}

double CandidateBoundEngine::FromScratchKeywordSum(
    uint32_t ci, size_t qi, const std::vector<double>& prox,
    size_t lane) const {
  (void)lane;  // the from-scratch sum is lane-independent by definition
  const size_t sum_idx = ci * n_keywords_ + qi;
  double s = 0.0;
  for (uint64_t i = src_begin_[sum_idx]; i < src_begin_[sum_idx + 1]; ++i) {
    s += static_cast<double>(src_w_[i]) * prox[src_rows_[i]];
  }
  return s;
}

}  // namespace s3::core
