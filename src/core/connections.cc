#include "core/connections.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace s3::core {

using social::EntityId;
using social::EntityKind;

ConnectionBuilder::ConnectionBuilder(const S3Instance& instance, double eta)
    : instance_(instance), eta_(eta) {
  assert(instance.finalized());
}

bool ConnectionBuilder::NodeContainsMatch(doc::NodeId n,
                                          const QueryExtension& ext,
                                          size_t qi) const {
  for (KeywordId k : instance_.docs().node(n).keywords) {
    if (ext[qi].contains(k)) return true;
  }
  return false;
}

bool ConnectionBuilder::TagGrounded(social::TagId t, size_t qi,
                                    const QueryExtension& ext) {
  Key key{t, static_cast<uint32_t>(qi)};
  auto it = tag_grounded_memo_.find(key);
  if (it != tag_grounded_memo_.end()) return it->second;
  // Least-fixpoint guard: a tag-on-tag cycle grounds nothing. The API
  // only builds tag DAGs today, but deserialized or future instances
  // must not send this recursion into a loop.
  Key guard{t, static_cast<uint32_t>(qi) | 0x20000000u};
  if (in_progress_.contains(guard)) {
    ++guard_hits_;
    return false;
  }
  const size_t hits_before = guard_hits_;
  in_progress_.insert(guard);
  const Tag& tag = instance_.tags()[t];
  bool grounded = tag.keyword != kInvalidKeyword &&
                  ext[qi].contains(tag.keyword);
  if (!grounded) {
    for (social::TagId b : instance_.TagsOn(EntityId::Tag(t))) {
      if (TagGrounded(b, qi, ext)) {
        grounded = true;
        break;
      }
    }
  }
  in_progress_.erase(guard);
  // A positive answer is final (the derivation is monotone), but a
  // negative one computed while a guard suppressed a dependency is only
  // valid for this call stack — don't cache it.
  if (grounded || guard_hits_ == hits_before) {
    tag_grounded_memo_.emplace(key, grounded);
  }
  return grounded;
}

bool ConnectionBuilder::FragmentGrounded(doc::NodeId f, size_t qi,
                                         const QueryExtension& ext) {
  Key key{f, static_cast<uint32_t>(qi)};
  auto it = frag_grounded_memo_.find(key);
  if (it != frag_grounded_memo_.end()) return it->second;
  // Least-fixpoint guard: a cycle of comments grounds nothing.
  Key guard{f, static_cast<uint32_t>(qi) | 0x40000000u};
  if (in_progress_.contains(guard)) {
    ++guard_hits_;
    return false;
  }
  const size_t hits_before = guard_hits_;
  in_progress_.insert(guard);

  bool grounded = false;
  const doc::DocumentStore& docs = instance_.docs();
  std::vector<doc::NodeId> subtree{f};
  {
    doc::DocId d = docs.DocOf(f);
    for (uint32_t local : docs.document(d).Descendants(docs.LocalOf(f))) {
      subtree.push_back(docs.GlobalId(d, local));
    }
  }
  for (doc::NodeId n : subtree) {
    if (NodeContainsMatch(n, ext, qi)) {
      grounded = true;
      break;
    }
    for (social::TagId t : instance_.TagsOn(EntityId::Fragment(n))) {
      if (TagGrounded(t, qi, ext)) {
        grounded = true;
        break;
      }
    }
    if (grounded) break;
    for (doc::NodeId c : instance_.CommentsOnFragment(n)) {
      if (FragmentGrounded(c, qi, ext)) {
        grounded = true;
        break;
      }
    }
    if (grounded) break;
  }
  in_progress_.erase(guard);
  if (grounded || guard_hits_ == hits_before) {
    frag_grounded_memo_.emplace(key, grounded);
  }
  return grounded;
}

const std::unordered_set<uint32_t>& ConnectionBuilder::TagSources(
    social::TagId t, size_t qi, const QueryExtension& ext) {
  Key key{t, static_cast<uint32_t>(qi)};
  auto it = tag_memo_.find(key);
  if (it != tag_memo_.end()) return it->second;
  // Cycle guard for tag-on-tag loops: contribute nothing on re-entry
  // (mirrors the DocSources comment-loop guard).
  Key guard{t, static_cast<uint32_t>(qi) | 0x10000000u};
  static const std::unordered_set<uint32_t> kEmpty;
  if (in_progress_.contains(guard)) {
    ++guard_hits_;
    return kEmpty;
  }
  const size_t hits_before = guard_hits_;
  in_progress_.insert(guard);

  std::unordered_set<uint32_t> sources;
  const Tag& tag = instance_.tags()[t];
  const uint32_t author_row = instance_.RowOfUser(tag.author);

  if (tag.keyword != kInvalidKeyword) {
    if (ext[qi].contains(tag.keyword)) sources.insert(author_row);
  } else {
    // Endorsement: the author becomes a source iff the subject has a
    // grounded connection to the keyword.
    bool grounded = false;
    if (tag.subject.kind() == EntityKind::kFragment) {
      grounded = FragmentGrounded(tag.subject.index(), qi, ext);
    } else if (tag.subject.kind() == EntityKind::kTag) {
      grounded = TagGrounded(tag.subject.index(), qi, ext);
    }
    if (grounded) sources.insert(author_row);
  }

  // Higher-level tags: tags on this tag add their own sources
  // (paper R4; the tag "adds its connections to the tagged fragment").
  for (social::TagId b : instance_.TagsOn(EntityId::Tag(t))) {
    const auto& sub = TagSources(b, qi, ext);
    sources.insert(sub.begin(), sub.end());
  }
  in_progress_.erase(guard);
  if (guard_hits_ != hits_before) {
    // A guard fired below us: `sources` may be missing contributions
    // from the suppressed dependency and is only valid for this call
    // stack. Park it in the scratch arena instead of the memo table.
    scratch_sets_.push_back(
        std::make_unique<std::unordered_set<uint32_t>>(std::move(sources)));
    return *scratch_sets_.back();
  }
  return tag_memo_.emplace(key, std::move(sources)).first->second;
}

const std::unordered_set<uint32_t>& ConnectionBuilder::DocSources(
    doc::NodeId root, size_t qi, const QueryExtension& ext) {
  Key key{root, static_cast<uint32_t>(qi)};
  auto it = doc_memo_.find(key);
  if (it != doc_memo_.end()) return it->second;
  // Cycle guard for comment loops: contribute nothing on re-entry.
  Key guard{root, static_cast<uint32_t>(qi) | 0x80000000u};
  static const std::unordered_set<uint32_t> kEmpty;
  if (in_progress_.contains(guard)) {
    ++guard_hits_;
    return kEmpty;
  }
  const size_t hits_before = guard_hits_;
  in_progress_.insert(guard);

  std::unordered_set<uint32_t> sources;
  const doc::DocumentStore& docs = instance_.docs();
  std::vector<doc::NodeId> subtree{root};
  {
    doc::DocId d = docs.DocOf(root);
    for (uint32_t local : docs.document(d).Descendants(docs.LocalOf(root))) {
      subtree.push_back(docs.GlobalId(d, local));
    }
  }
  bool has_contains = false;
  for (doc::NodeId n : subtree) {
    if (!has_contains && NodeContainsMatch(n, ext, qi)) {
      has_contains = true;
    }
    for (social::TagId t : instance_.TagsOn(EntityId::Fragment(n))) {
      const auto& ts = TagSources(t, qi, ext);
      sources.insert(ts.begin(), ts.end());
    }
    for (doc::NodeId c : instance_.CommentsOnFragment(n)) {
      const auto& cs = DocSources(c, qi, ext);
      sources.insert(cs.begin(), cs.end());
    }
  }
  if (has_contains) {
    // The document itself is the source of its contains connections.
    sources.insert(instance_.RowOfFragment(root));
  }
  in_progress_.erase(guard);
  if (guard_hits_ != hits_before) {
    scratch_sets_.push_back(
        std::make_unique<std::unordered_set<uint32_t>>(std::move(sources)));
    return *scratch_sets_.back();
  }
  return doc_memo_.emplace(key, std::move(sources)).first->second;
}

std::vector<std::vector<AttachmentEvent>> ConnectionBuilder::CollectEvents(
    social::ComponentId comp, const QueryExtension& ext) {
  const social::EntityLayout& layout = instance_.layout();
  std::vector<std::vector<AttachmentEvent>> events(ext.size());

  for (size_t qi = 0; qi < ext.size(); ++qi) {
    for (uint32_t row : instance_.components().Members(comp)) {
      EntityId e = layout.Entity(row);
      if (e.kind() != EntityKind::kFragment) continue;
      doc::NodeId f = e.index();
      // S3:contains — one tuple (contains, f, d) per matching fragment.
      if (NodeContainsMatch(f, ext, qi)) {
        events[qi].push_back(
            AttachmentEvent{f, kSelfSource, ConnectionType::kContains});
      }
      // S3:relatedTo — tag chains rooted on f.
      std::unordered_set<uint32_t> tag_sources;
      for (social::TagId t : instance_.TagsOn(EntityId::Fragment(f))) {
        const auto& ts = TagSources(t, qi, ext);
        tag_sources.insert(ts.begin(), ts.end());
      }
      for (uint32_t src : tag_sources) {
        events[qi].push_back(
            AttachmentEvent{f, src, ConnectionType::kRelatedTo});
      }
      // S3:commentsOn — sources of comments on f carry over.
      std::unordered_set<uint32_t> comment_sources;
      for (doc::NodeId c : instance_.CommentsOnFragment(f)) {
        const auto& cs = DocSources(c, qi, ext);
        comment_sources.insert(cs.begin(), cs.end());
      }
      for (uint32_t src : comment_sources) {
        events[qi].push_back(
            AttachmentEvent{f, src, ConnectionType::kCommentsOn});
      }
    }
  }
  return events;
}

ComponentCandidates ConnectionBuilder::Build(social::ComponentId comp,
                                             const QueryExtension& ext) {
  const doc::DocumentStore& docs = instance_.docs();
  const size_t n_keywords = ext.size();
  assert(n_keywords <= 64 && "queries are limited to 64 keywords");

  ComponentCandidates out;
  out.component = comp;

  std::vector<std::vector<AttachmentEvent>> events =
      CollectEvents(comp, ext);
  for (size_t qi = 0; qi < n_keywords; ++qi) {
    if (events[qi].empty()) return out;  // component cannot match
  }

  // Coverage pass: which nodes have at least one event for each
  // keyword anywhere in their subtree?
  const uint64_t full_mask =
      n_keywords == 64 ? ~0ull : ((1ull << n_keywords) - 1);
  std::unordered_map<doc::NodeId, uint64_t> coverage;
  for (size_t qi = 0; qi < n_keywords; ++qi) {
    for (const AttachmentEvent& ev : events[qi]) {
      coverage[ev.fragment] |= (1ull << qi);
      for (doc::NodeId a : docs.Ancestors(ev.fragment)) {
        coverage[a] |= (1ull << qi);
      }
    }
  }

  // Aggregation pass for fully covered candidates.
  std::unordered_map<doc::NodeId, uint32_t> cand_index;
  for (const auto& [node, mask] : coverage) {
    if (mask != full_mask) continue;
    uint32_t idx = static_cast<uint32_t>(out.candidates.size());
    cand_index.emplace(node, idx);
    Candidate c;
    c.node = node;
    c.sources.resize(n_keywords);
    c.static_weight.assign(n_keywords, 0.0);
    out.candidates.push_back(std::move(c));
  }
  if (out.candidates.empty()) return out;

  // For each event, add its weight to every covered ancestor-or-self.
  std::vector<std::vector<std::unordered_map<uint32_t, double>>> weights(
      out.candidates.size());
  for (auto& w : weights) w.resize(n_keywords);

  for (size_t qi = 0; qi < n_keywords; ++qi) {
    for (const AttachmentEvent& ev : events[qi]) {
      doc::NodeId cur = ev.fragment;
      size_t distance = 0;
      while (true) {
        auto it = cand_index.find(cur);
        if (it != cand_index.end()) {
          uint32_t src = ev.source_row == kSelfSource
                             ? instance_.RowOfFragment(cur)
                             : ev.source_row;
          weights[it->second][qi][src] +=
              std::pow(eta_, static_cast<double>(distance));
        }
        const doc::Node& node = docs.node(cur);
        uint32_t parent_local = node.parent;
        if (parent_local == UINT32_MAX) break;
        cur = docs.GlobalId(docs.DocOf(cur), parent_local);
        ++distance;
      }
    }
  }

  for (size_t ci = 0; ci < out.candidates.size(); ++ci) {
    Candidate& c = out.candidates[ci];
    double cap = 1.0;
    for (size_t qi = 0; qi < n_keywords; ++qi) {
      double total = 0.0;
      auto& list = c.sources[qi];
      list.reserve(weights[ci][qi].size());
      for (const auto& [src, w] : weights[ci][qi]) {
        list.emplace_back(src, static_cast<float>(w));
        total += w;
      }
      // Deterministic order for reproducibility.
      std::sort(list.begin(), list.end());
      c.static_weight[qi] = total;
      cap *= total;
    }
    c.cap = cap;
    out.max_cap = std::max(out.max_cap, cap);
  }
  return out;
}

}  // namespace s3::core
