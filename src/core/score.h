// The concrete S3k score (paper §3.4) and the feasibility-property
// constants used by the search algorithm (§3.3).
//
// Social proximity:  prox(a,b) = Cγ · Σ_{p ∈ a⇝b} prox→(p) / γ^|p|,
// with prox→(p) the product of normalized edge weights and
// Cγ = (γ−1)/γ, so that prox ≤ 1.
//
// Document score:
//   score(d,(u,φ)) = Π_{k∈φ} Σ_{(type,f,src) ∈ con(d,k)}
//                       η^{|pos(d,f)|} · prox(u,src).
//
// Feasibility constants (proofs in DESIGN.md):
//   * Uprox: prox≤n = prox≤(n−1) + Cγ · border_n / γ^n, where border_n
//     is the mass of length-n paths — the matrix-power frontier.
//   * Long-path attenuation: because the transition matrix is
//     (sub)stochastic, Σ_{|p|=m} prox→(p) ≤ 1 and
//     prox − prox≤n ≤ Cγ Σ_{m>n} γ^{−m} = γ^{−(n+1)} =: B>n.
//   * Bscore(q,B) = Π_{k∈φ} W_k · B where W_k caps Σ η^pos — realized
//     per candidate by `Candidate::cap` and per component by `max_cap`.
#ifndef S3_CORE_SCORE_H_
#define S3_CORE_SCORE_H_

#include <cmath>
#include <vector>

#include "core/connections.h"

namespace s3::core {

// Tunable parameters of the concrete score.
struct ScoreParams {
  // Social damping γ > 1: larger γ discounts long paths more.
  double gamma = 1.5;
  // Structural damping η < 1 on |pos(d, f)|.
  double eta = 0.5;
};

// Cγ = (γ−1)/γ.
inline double CGamma(double gamma) { return (gamma - 1.0) / gamma; }

// B>n: bound on prox − prox≤n (tail mass of paths longer than n).
inline double TailBound(double gamma, size_t n) {
  return std::pow(gamma, -static_cast<double>(n + 1));
}

// Bound on prox(u, src) for any source first reachable only through
// paths of length ≥ n (sources of components undiscovered at step n).
inline double UndiscoveredBound(double gamma, size_t n) {
  return std::pow(gamma, -static_cast<double>(n));
}

// Score of `cand` with prox(u, src) read from `prox` exactly
// (used when exploration has converged, and by the naive reference).
double CandidateScore(const Candidate& cand,
                      const std::vector<double>& prox);

// Lower bound: uses the partial proximities accumulated so far
// (allProx); sources not yet reached contribute 0.
double CandidateLowerBound(const Candidate& cand,
                           const std::vector<double>& all_prox);

// Upper bound: every source may still gain at most `tail` proximity
// from unexplored paths, and prox is globally capped by 1, so each
// per-keyword sum S = Σ w·prox is bounded by min(W, S + W·tail) with
// W = Σ w. The clamp is applied at the sum level (not per source) so
// the bound is a function of (S, W, tail) alone — this is what lets
// S3k maintain S incrementally and refresh upper bounds in O(1) per
// keyword when the shared tail term shrinks.
double CandidateUpperBound(const Candidate& cand,
                           const std::vector<double>& all_prox,
                           double tail);

}  // namespace s3::core

#endif  // S3_CORE_SCORE_H_
