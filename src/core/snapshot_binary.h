// Versioned binary snapshot codec for *finalized* S3 instances.
//
// Unlike the text codec (core/serialization.h), which saves only the
// population and pays a full Finalize() — saturation, matrix build,
// component discovery — on every load, the binary format serializes
// the derived state too: interned term dictionary, saturated triple
// store, inverted-index postings, transition-matrix CSR, component
// union-find forest and the keyword→component directory. Loading goes
// through S3Instance::FromSnapshot / AttachDerived and skips all of
// that recomputation; generation and lineage round-trip intact, which
// is what lets the server's SnapshotManager resume a killed process at
// its exact pre-crash generation.
//
// Two wire formats share the 8-byte magic and a u32 version:
//
//   v1 — streamed frames: (u32 id, u64 size, u32 CRC-32, payload) in
//        fixed ascending-id order, every field fixed-width. Read
//        forever; written only under S3_FORCE_SNAPSHOT_V1.
//   v2 — the compact + zero-copy format (see src/server/STORAGE.md):
//        a CRC-guarded section *table* up front, varint/delta-encoded
//        compact sections for the population, postings and CSR
//        columns, and 64-byte-aligned fixed-width sections (matrix
//        row_ptr / values / denominators, component forest) that
//        AttachBinarySnapshot hands to the instance as zero-copy
//        StorageSpan views over the mmap'd file.
//
// Corruption — truncation, bit flips, garbage — is detected at the
// framing layer and reported as InvalidArgument with the failing
// section named, never undefined behaviour. All multi-byte values are
// little-endian (common/binary_io.h).
#ifndef S3_CORE_SNAPSHOT_BINARY_H_
#define S3_CORE_SNAPSHOT_BINARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mmap_file.h"
#include "common/status.h"
#include "core/s3_instance.h"

namespace s3::core {

inline constexpr uint32_t kBinarySnapshotV1 = 1;
inline constexpr uint32_t kBinarySnapshotV2 = 2;
// Newest format — what SaveBinarySnapshot writes by default.
inline constexpr uint32_t kBinarySnapshotVersion = kBinarySnapshotV2;

// kBinarySnapshotV2, or kBinarySnapshotV1 when the environment sets
// S3_FORCE_SNAPSHOT_V1 (to "ON" or "1" — the CI leg that keeps the v1
// write path exercised).
uint32_t DefaultBinarySnapshotVersion();

// True when `bytes` begin with the binary-snapshot magic (cheap format
// sniffing; says nothing about the rest of the file).
bool LooksLikeBinarySnapshot(std::string_view bytes);

// Serializes `instance` — population and derived state — into the
// binary snapshot format (the default overload writes
// DefaultBinarySnapshotVersion(); pass kBinarySnapshotV1/V2 to pin
// one). Fails with FailedPrecondition on an unfinalized instance
// (there is no derived state to save; use the text codec for
// build-phase dumps) and InvalidArgument on an unknown version.
Result<std::string> SaveBinarySnapshot(const S3Instance& instance,
                                       uint32_t version);
Result<std::string> SaveBinarySnapshot(const S3Instance& instance);

// Parses, checksum-verifies and validates a binary snapshot (either
// version), returning a finalized instance without running Finalize.
// Everything is copied to the heap — no views. Any framing or
// validation failure is InvalidArgument naming the offending section.
Result<std::shared_ptr<const S3Instance>> LoadBinarySnapshot(
    std::string_view bytes);

// Zero-copy attach policy for AttachBinarySnapshot.
struct SnapshotAttachOptions {
  // Attach v2 aligned sections as StorageSpan views into the region
  // (when the host is little-endian and the section lands properly
  // aligned in memory); false forces heap copies of everything.
  bool allow_views = true;
  // Verify aligned-section checksums at attach time. The default is
  // the lazy policy: aligned payloads skip their CRC pass (compact
  // sections are always verified — their decode walks every byte
  // anyway), keeping attach from paging in the large float arrays.
  // Corruption in a lazily-attached section is still bounded: the
  // structural validation in AttachDerived rejects malformed shapes,
  // and bench/tools can always re-verify with eager_crc.
  bool eager_crc = false;
};

// Attaches a snapshot from a mapped region. v1 regions load via the
// copy path; v2 regions decode the compact sections and hand the
// aligned sections to the instance as zero-copy views pinning
// `region`. The returned instance (and every ApplyDelta successor that
// still shares a view) keeps the mapping alive; deleting the file on
// disk while attached is safe (POSIX keeps mapped pages valid).
Result<std::shared_ptr<const S3Instance>> AttachBinarySnapshot(
    std::shared_ptr<const MappedRegion> region,
    const SnapshotAttachOptions& options = {});

// ---- inspection (tools/s3_snapshot) -----------------------------------

struct SnapshotSectionInfo {
  uint32_t id = 0;
  const char* name = "?";
  uint64_t size = 0;   // payload bytes on disk
  uint32_t crc = 0;    // stored checksum
  bool crc_ok = false; // stored checksum matches the payload
  // Wire encoding: "raw" (v1 sections and v2 fixed-width streams),
  // "varint-delta" (v2 compact) or "aligned" (v2 zero-copy views).
  const char* encoding = "raw";
  // Decoded in-memory bytes (equals `size` for raw and aligned
  // sections; larger for compact ones — size/mem_bytes is the
  // section's compression ratio).
  uint64_t mem_bytes = 0;
};

struct SnapshotInfo {
  uint32_t version = 0;
  // From the META section (zero when META is unreadable).
  uint64_t generation = 0;
  uint64_t lineage = 0;
  uint64_t rdf_social_edges = 0;
  uint64_t n_users = 0, n_docs = 0, n_nodes = 0, n_tags = 0;
  uint64_t n_keywords = 0, n_edges = 0, n_terms = 0, n_triples = 0;
  std::vector<SnapshotSectionInfo> sections;
};

// Frame-level inspection: header, section table, checksum verification
// and the META summary — without materializing an instance. Fails only
// when the header or section framing itself is unreadable; per-section
// checksum mismatches are reported via `crc_ok`.
Result<SnapshotInfo> InspectBinarySnapshot(std::string_view bytes);

}  // namespace s3::core

#endif  // S3_CORE_SNAPSHOT_BINARY_H_
