// Versioned binary snapshot codec for *finalized* S3 instances.
//
// Unlike the text codec (core/serialization.h), which saves only the
// population and pays a full Finalize() — saturation, matrix build,
// component discovery — on every load, the binary format serializes
// the derived state too: interned term dictionary, saturated triple
// store, inverted-index postings, transition-matrix CSR, component
// union-find forest and the keyword→component directory. Loading goes
// through S3Instance::FromSnapshot / AttachDerived and skips all of
// that recomputation; generation and lineage round-trip intact, which
// is what lets the server's SnapshotManager resume a killed process at
// its exact pre-crash generation.
//
// Framing: an 8-byte magic, a u32 format version and a u32 section
// count, followed by the sections in fixed ascending-id order. Every
// section is (u32 id, u64 payload size, u32 CRC-32 of the payload,
// payload), so corruption — truncation, bit flips, garbage — is
// detected at the frame level and reported as InvalidArgument with the
// failing section named, never undefined behaviour. All multi-byte
// values are little-endian (common/binary_io.h).
#ifndef S3_CORE_SNAPSHOT_BINARY_H_
#define S3_CORE_SNAPSHOT_BINARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/s3_instance.h"

namespace s3::core {

inline constexpr uint32_t kBinarySnapshotVersion = 1;

// True when `bytes` begin with the binary-snapshot magic (cheap format
// sniffing; says nothing about the rest of the file).
bool LooksLikeBinarySnapshot(std::string_view bytes);

// Serializes `instance` — population and derived state — into the
// binary snapshot format. Fails with FailedPrecondition on an
// unfinalized instance (there is no derived state to save; use the
// text codec for build-phase dumps).
Result<std::string> SaveBinarySnapshot(const S3Instance& instance);

// Parses, checksum-verifies and validates a binary snapshot, returning
// a finalized instance without running Finalize. Any framing or
// validation failure is InvalidArgument naming the offending section.
Result<std::shared_ptr<const S3Instance>> LoadBinarySnapshot(
    std::string_view bytes);

// ---- inspection (tools/s3_snapshot) -----------------------------------

struct SnapshotSectionInfo {
  uint32_t id = 0;
  const char* name = "?";
  uint64_t size = 0;   // payload bytes
  uint32_t crc = 0;    // stored checksum
  bool crc_ok = false; // stored checksum matches the payload
};

struct SnapshotInfo {
  uint32_t version = 0;
  // From the META section (zero when META is unreadable).
  uint64_t generation = 0;
  uint64_t lineage = 0;
  uint64_t rdf_social_edges = 0;
  uint64_t n_users = 0, n_docs = 0, n_nodes = 0, n_tags = 0;
  uint64_t n_keywords = 0, n_edges = 0, n_terms = 0, n_triples = 0;
  std::vector<SnapshotSectionInfo> sections;
};

// Frame-level inspection: header, section table, checksum verification
// and the META summary — without materializing an instance. Fails only
// when the header or section framing itself is unreadable; per-section
// checksum mismatches are reported via `crc_ok`.
Result<SnapshotInfo> InspectBinarySnapshot(std::string_view bytes);

}  // namespace s3::core

#endif  // S3_CORE_SNAPSHOT_BINARY_H_
