// Text serialization of a full S3 instance (users, social edges,
// documents with structure and keywords, comments, tags, and the RDF
// graph as embedded weighted N-Triples).
//
// Line-oriented format, "%"-escaped tokens:
//
//   S3 v1
//   KW <spelling>                     # keyword table, ids by order
//   USER <uri>
//   SOCIAL <from> <to> <weight>
//   DOC <uri> <poster> <n_nodes>
//   N <parent|-> <name> [kw-ids...]   # nodes of the last DOC, in order
//   COMMENT <doc-id> <target-node>
//   TAGF <author> <subject-node> <kw-id|->
//   TAGT <author> <subject-tag> <kw-id|->
//   RDF
//   ...weighted N-Triples until EOF...
//
// Loading returns an *unfinalized* instance; call Finalize() before
// querying. Round-tripping a populated instance preserves all query
// behaviour (see serialization_test).
//
// This is the *text* codec of the storage layer: kept for
// debuggability (human-diffable dumps) and conversion. Production
// persistence uses the binary snapshot codec (core/snapshot_binary.h),
// which also serializes derived state; core/snapshot.h is the
// format-dispatching seam over both.
#ifndef S3_CORE_SERIALIZATION_H_
#define S3_CORE_SERIALIZATION_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/s3_instance.h"

namespace s3::core {

// Serializes the population of `instance` (which may or may not be
// finalized; derived structures are not saved — they are rebuilt by
// Finalize after loading).
std::string SaveInstance(const S3Instance& instance);

// Parses a SaveInstance dump. The result is not finalized.
Result<std::unique_ptr<S3Instance>> LoadInstance(std::string_view text);

}  // namespace s3::core

#endif  // S3_CORE_SERIALIZATION_H_
