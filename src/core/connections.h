// Derivation of the connections con(d, k) between documents and query
// keywords (paper §3.2), organised per component.
//
// A connection is a tuple (type, f, src):
//   * S3:contains   — fragment f of d contains k' ∈ Ext(k); src is d.
//   * S3:relatedTo  — a tag chain on fragment f of d links it to k';
//                     src is the tag author (or the source a tag
//                     inherited, for higher-level tags / endorsements).
//   * S3:commentsOn — a comment on fragment f of d is connected to k;
//                     the comment's sources carry over.
//
// Connections propagate only along partOf / commentsOn± / hasSubject±
// edges, i.e. inside one component of the ComponentIndex, so the
// builder works component-at-a-time. con(d, k) is fully determined by
// the instance (exploration only refines prox), so the builder emits,
// per candidate and query keyword, the aggregated static weights
//   w(d, k, src) = Σ_{(type,f,src)} η^{|pos(d,f)|}
// from which S3k computes score bounds as Σ_src w · prox-bound(src).
//
// Endorsement semantics (keyword-less tags): an endorsement by user v
// on subject x contributes v as a source for keyword k iff x has a
// *grounded* connection to k — one derivable without endorsements
// (least fixpoint of the inheritance rule; see DESIGN.md).
#ifndef S3_CORE_CONNECTIONS_H_
#define S3_CORE_CONNECTIONS_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/s3_instance.h"

namespace s3::core {

enum class ConnectionType : uint8_t {
  kContains = 0,
  kRelatedTo = 1,
  kCommentsOn = 2,
};

// Sentinel source meaning "the candidate document itself" (contains
// connections: src is the subtree root being scored).
inline constexpr uint32_t kSelfSource = UINT32_MAX;

// One attachment event for a query keyword: fragment f plus the source
// whose social proximity weights the tuple.
struct AttachmentEvent {
  doc::NodeId fragment;
  uint32_t source_row;  // entity row, or kSelfSource
  ConnectionType type;
};

// A candidate answer (document or fragment) with its aggregated
// connection weights.
struct Candidate {
  doc::NodeId node = doc::kInvalidNode;
  // sources[i]: (source entity row, Σ η^pos) for query keyword i; the
  // kSelfSource sentinel is already resolved to the candidate's row.
  std::vector<std::vector<std::pair<uint32_t, float>>> sources;
  // static_weight[i] = W(d, k_i) = Σ_src w — the score with prox ≡ 1.
  std::vector<double> static_weight;
  // cap = Π_i static_weight[i]; score(d, q) ≤ cap · maxprox^{|φ|}.
  double cap = 0.0;
};

// All candidates of one component for one query.
struct ComponentCandidates {
  social::ComponentId component = social::kInvalidComponent;
  std::vector<Candidate> candidates;
  double max_cap = 0.0;
};

// Per-query keyword acceptance sets: ext[i] = Ext(k_i) as keyword ids.
using QueryExtension = std::vector<std::unordered_set<KeywordId>>;

// Builds candidates per component. One builder per query evaluation;
// memo tables for tag and comment source sets are reused across
// components.
class ConnectionBuilder {
 public:
  // `instance` must be finalized. eta is the structural damping factor.
  ConnectionBuilder(const S3Instance& instance, double eta);

  // Collects the attachment events of component `comp` for each query
  // keyword and aggregates them into candidates. Only fragments whose
  // subtree matches *all* query keywords become candidates.
  ComponentCandidates Build(social::ComponentId comp,
                            const QueryExtension& ext);

  // Raw per-keyword events of a component (exposed for tests and for
  // the naive reference scorer).
  std::vector<std::vector<AttachmentEvent>> CollectEvents(
      social::ComponentId comp, const QueryExtension& ext);

 private:
  // Sources contributed by tag `t` to the item it tags, for query
  // keyword qi (includes higher-level tags and endorsements).
  const std::unordered_set<uint32_t>& TagSources(social::TagId t,
                                                 size_t qi,
                                                 const QueryExtension& ext);

  // Grounded (endorsement-free) variant, used as the endorsement
  // inheritance guard.
  bool TagGrounded(social::TagId t, size_t qi, const QueryExtension& ext);

  // All connection sources of the document rooted at `root` (contains /
  // tag chains / endorsements / comments, recursively).
  const std::unordered_set<uint32_t>& DocSources(doc::NodeId root,
                                                 size_t qi,
                                                 const QueryExtension& ext);

  // True if the subtree of fragment f has a grounded connection to
  // query keyword qi.
  bool FragmentGrounded(doc::NodeId f, size_t qi,
                        const QueryExtension& ext);

  bool NodeContainsMatch(doc::NodeId n, const QueryExtension& ext,
                         size_t qi) const;

  const S3Instance& instance_;
  double eta_;

  // Memo tables keyed by (entity id, query keyword index).
  struct Key {
    uint32_t id;
    uint32_t qi;
    bool operator==(const Key& o) const { return id == o.id && qi == o.qi; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (static_cast<size_t>(k.id) << 20) ^ k.qi;
    }
  };
  std::unordered_map<Key, std::unordered_set<uint32_t>, KeyHash> tag_memo_;
  std::unordered_map<Key, bool, KeyHash> tag_grounded_memo_;
  std::unordered_map<Key, std::unordered_set<uint32_t>, KeyHash> doc_memo_;
  std::unordered_map<Key, bool, KeyHash> frag_grounded_memo_;
  // Recursion guards (least-fixpoint semantics on comment and tag
  // cycles). Each recursive derivation namespaces its guard keys with a
  // distinct high bit in qi (queries have at most 64 keywords):
  // 0x80000000 DocSources, 0x40000000 FragmentGrounded,
  // 0x20000000 TagGrounded, 0x10000000 TagSources.
  std::unordered_set<Key, KeyHash> in_progress_;
  // Counts guard suppressions. A result computed while a guard fired
  // below it may under-approximate (the cycle member it fed back into
  // was blanked), so it is only valid for the call stack that produced
  // it: negative grounded answers are not memoized, and source sets go
  // to `scratch_sets_` (kept alive for reference stability) instead of
  // the memo tables.
  size_t guard_hits_ = 0;
  std::vector<std::unique_ptr<std::unordered_set<uint32_t>>> scratch_sets_;
};

}  // namespace s3::core

#endif  // S3_CORE_CONNECTIONS_H_
