// Naive reference implementations used as test oracles and by the
// ablation benchmarks.
//
// NaiveProx enumerates social paths explicitly (DFS over the edge
// store, applying the §2.5 normalization edge by edge) instead of using
// the transition matrix, giving an independent computation of
// prox≤L(u, ·). NaiveSearch scores every candidate with the converged
// proximities and picks the top-k greedily — the brute-force semantics
// that S3k must agree with.
#ifndef S3_CORE_NAIVE_REFERENCE_H_
#define S3_CORE_NAIVE_REFERENCE_H_

#include <vector>

#include "core/s3k.h"

namespace s3::core {

// prox≤max_len(seeker, v) for every entity row v, by explicit path
// enumeration. Exponential in max_len on dense graphs — use on small
// instances only.
std::vector<double> NaiveProx(const S3Instance& instance,
                              social::UserId seeker, size_t max_len,
                              double gamma);

// Shortest-path-style proximity (max over paths of prox→(p)/γ^|p|,
// times Cγ): what a one-best-path engine like TopkS uses in place of
// the all-paths aggregation. Used by the ablation bench.
std::vector<double> NaiveBestPathProx(const S3Instance& instance,
                                      social::UserId seeker, size_t max_len,
                                      double gamma);

// Brute-force top-k with exact (depth-bounded) proximities.
std::vector<ResultEntry> NaiveSearch(const S3Instance& instance,
                                     const Query& query,
                                     const S3kOptions& options,
                                     size_t max_len);

// Brute-force top-k given an arbitrary per-row proximity vector
// (lets ablations swap the proximity model).
std::vector<ResultEntry> NaiveSearchWithProx(
    const S3Instance& instance, const Query& query,
    const S3kOptions& options, const std::vector<double>& prox);

}  // namespace s3::core

#endif  // S3_CORE_NAIVE_REFERENCE_H_
