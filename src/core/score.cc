#include "core/score.h"

#include <algorithm>

namespace s3::core {

double CandidateScore(const Candidate& cand,
                      const std::vector<double>& prox) {
  double score = 1.0;
  for (const auto& per_keyword : cand.sources) {
    double sum = 0.0;
    for (const auto& [src, w] : per_keyword) {
      sum += static_cast<double>(w) * prox[src];
    }
    score *= sum;
  }
  return score;
}

double CandidateLowerBound(const Candidate& cand,
                           const std::vector<double>& all_prox) {
  return CandidateScore(cand, all_prox);
}

double CandidateUpperBound(const Candidate& cand,
                           const std::vector<double>& all_prox,
                           double tail) {
  double score = 1.0;
  for (const auto& per_keyword : cand.sources) {
    double sum = 0.0;
    double w_total = 0.0;
    for (const auto& [src, w] : per_keyword) {
      sum += static_cast<double>(w) * all_prox[src];
      w_total += static_cast<double>(w);
    }
    // max(sum, ·) keeps upper ≥ lower even when accumulated prox
    // overshoots 1 by a rounding error.
    score *= std::max(sum, std::min(w_total, sum + w_total * tail));
  }
  return score;
}

}  // namespace s3::core
