#include "core/s3_instance.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <unordered_set>

#include "common/cow.h"
#include "core/instance_delta.h"
#include "rdf/vocab.h"

namespace s3::core {

using social::EdgeLabel;
using social::EntityId;

namespace {
const std::vector<social::TagId> kNoTags;
const std::vector<doc::NodeId> kNoComments;
const std::vector<social::ComponentId> kNoComponents;

// Lineage tokens. Unique within a process by construction (atomic
// counter); the counter is offset by a wall-clock base so tokens from
// *different* processes — which can meet through one storage
// directory across restarts (server/snapshot_manager.h) — practically
// never collide either. A restored snapshot reserves its serialized
// lineage (ReserveLineage) so that a Finalize run after a recovery
// can never mint a colliding token in the same process.
uint64_t LineageBase() {
  static const uint64_t base =
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::seconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count())
      << 20;
  return base;
}

std::atomic<uint64_t> g_next_lineage{1};

uint64_t MintLineage() {
  return LineageBase() + g_next_lineage.fetch_add(1,
                                                  std::memory_order_relaxed);
}

void ReserveLineage(uint64_t lineage) {
  const uint64_t base = LineageBase();
  if (lineage < base) return;  // every future mint already exceeds it
  const uint64_t floor = lineage - base + 1;
  uint64_t cur = g_next_lineage.load(std::memory_order_relaxed);
  while (cur < floor &&
         !g_next_lineage.compare_exchange_weak(cur, floor,
                                               std::memory_order_relaxed)) {
  }
}
}  // namespace

S3Instance::S3Instance()
    : terms_(std::make_shared<rdf::TermDictionary>()),
      rdf_(std::make_shared<rdf::TripleStore>()) {
  // Pre-intern the S3 vocabulary and its RDFS wiring so that user
  // ontologies can specialize S3 properties (paper §2.2 Extensibility).
  rdf::TermId social_p = terms_->InternUri(rdf::vocab::kSocial);
  rdf::TermId comments_p = terms_->InternUri(rdf::vocab::kCommentsOn);
  rdf::TermId posted_p = terms_->InternUri(rdf::vocab::kPostedBy);
  rdf::TermId related_c = terms_->InternUri(rdf::vocab::kRelatedTo);
  (void)social_p;
  (void)comments_p;
  (void)posted_p;
  (void)related_c;
}

social::UserId S3Instance::AddUser(std::string uri) {
  social::UserId id = static_cast<social::UserId>(users_.size());
  users_.push_back(User{id, std::move(uri)});
  // u type S3:user
  rdf_->Add(terms_->InternUri(users_.back().uri),
            terms_->InternUri(rdf::vocab::kType),
            terms_->InternUri(rdf::vocab::kUserClass));
  return id;
}

Status S3Instance::AddSocialEdge(social::UserId from, social::UserId to,
                                 double weight) {
  S3_RETURN_IF_ERROR(RequireNotFinalized("AddSocialEdge"));
  if (from >= users_.size() || to >= users_.size()) {
    return Status::InvalidArgument("unknown user id in social edge");
  }
  if (!(weight > 0.0 && weight <= 1.0)) {
    return Status::InvalidArgument("social edge weight must be in (0,1]");
  }
  edges_.Add(EntityId::User(from), EntityId::User(to), EdgeLabel::kSocial,
             weight);
  explicit_social_.push_back(ExplicitSocialEdge{from, to, weight});
  return Status::OK();
}

Result<doc::DocId> S3Instance::AddDocument(doc::Document document,
                                           std::string uri,
                                           social::UserId poster) {
  if (finalized_) {
    return Status::FailedPrecondition("AddDocument after Finalize");
  }
  if (poster >= users_.size()) {
    return Status::InvalidArgument("unknown poster user id");
  }
  Result<doc::DocId> added = docs_.AddDocument(std::move(document), uri);
  if (!added.ok()) return added.status();
  doc::DocId d = added.value();
  comment_target_.push_back(doc::kInvalidNode);
  poster_of_.push_back(poster);
  // root S3:postedBy poster (+ inverse).
  edges_.AddWithInverse(EntityId::Fragment(docs_.RootNode(d)),
                        EntityId::User(poster), EdgeLabel::kPostedBy, 1.0);
  return d;
}

Status S3Instance::AddComment(doc::DocId comment, doc::NodeId target) {
  S3_RETURN_IF_ERROR(RequireNotFinalized("AddComment"));
  if (comment >= docs_.DocumentCount() || target >= docs_.NodeCount()) {
    return Status::InvalidArgument("unknown document or node in AddComment");
  }
  doc::NodeId root = docs_.RootNode(comment);
  if (root == target ||
      (docs_.DocOf(target) == comment)) {
    return Status::InvalidArgument("a document cannot comment on itself");
  }
  edges_.AddWithInverse(EntityId::Fragment(root),
                        EntityId::Fragment(target),
                        EdgeLabel::kCommentsOn, 1.0);
  comments_on_[target].push_back(root);
  comment_target_[comment] = target;
  return Status::OK();
}

Result<social::TagId> S3Instance::AddTagOnFragment(social::UserId author,
                                                   doc::NodeId subject,
                                                   KeywordId keyword) {
  if (finalized_) {
    return Status::FailedPrecondition("AddTagOnFragment after Finalize");
  }
  if (author >= users_.size()) {
    return Status::InvalidArgument("unknown tag author");
  }
  if (subject >= docs_.NodeCount()) {
    return Status::InvalidArgument("unknown tag subject node");
  }
  social::TagId id = static_cast<social::TagId>(tags_.size());
  tags_.push_back(Tag{id, author, EntityId::Fragment(subject), keyword});
  EntityId te = EntityId::Tag(id);
  edges_.AddWithInverse(te, EntityId::Fragment(subject),
                        EdgeLabel::kHasSubject, 1.0);
  edges_.AddWithInverse(te, EntityId::User(author), EdgeLabel::kHasAuthor,
                        1.0);
  tags_on_[EntityId::Fragment(subject)].push_back(id);
  return id;
}

Result<social::TagId> S3Instance::AddTagOnTag(social::UserId author,
                                              social::TagId subject,
                                              KeywordId keyword) {
  if (finalized_) {
    return Status::FailedPrecondition("AddTagOnTag after Finalize");
  }
  if (author >= users_.size()) {
    return Status::InvalidArgument("unknown tag author");
  }
  if (subject >= tags_.size()) {
    return Status::InvalidArgument("unknown subject tag");
  }
  social::TagId id = static_cast<social::TagId>(tags_.size());
  tags_.push_back(Tag{id, author, EntityId::Tag(subject), keyword});
  EntityId te = EntityId::Tag(id);
  edges_.AddWithInverse(te, EntityId::Tag(subject), EdgeLabel::kHasSubject,
                        1.0);
  edges_.AddWithInverse(te, EntityId::User(author), EdgeLabel::kHasAuthor,
                        1.0);
  tags_on_[EntityId::Tag(subject)].push_back(id);
  return id;
}

void S3Instance::DeclareSubClass(const std::string& sub,
                                 const std::string& super) {
  rdf_->Add(terms_->InternUri(sub),
            terms_->InternUri(rdf::vocab::kSubClassOf),
            terms_->InternUri(super));
}

void S3Instance::DeclareSubProperty(const std::string& sub,
                                    const std::string& super) {
  rdf_->Add(terms_->InternUri(sub),
            terms_->InternUri(rdf::vocab::kSubPropertyOf),
            terms_->InternUri(super));
}

void S3Instance::DeclareType(const std::string& instance,
                             const std::string& klass) {
  rdf_->Add(terms_->InternUri(instance),
            terms_->InternUri(rdf::vocab::kType),
            terms_->InternUri(klass));
}

std::vector<KeywordId> S3Instance::InternText(std::string_view text) {
  std::vector<KeywordId> out;
  for (const std::string& word : ExtractKeywords(text)) {
    out.push_back(vocabulary_.Intern(word));
  }
  return out;
}

Status S3Instance::RequireNotFinalized(const char* op) const {
  if (finalized_) {
    return Status::FailedPrecondition(std::string(op) + " after Finalize");
  }
  return Status::OK();
}

Status S3Instance::Finalize() {
  S3_RETURN_IF_ERROR(RequireNotFinalized("Finalize"));
  // 1. RDFS closure; the semantics of the graph is its saturation.
  saturation_stats_ = rdf::Saturate(*terms_, *rdf_);

  // 1b. Extensibility (paper §2.2): RDF-declared social relationships
  // join the network. After saturation, any specialization p ≺sp
  // S3:social has already propagated its assertions to S3:social
  // itself, so scanning S3:social triples suffices.
  {
    rdf::TermId social_p = terms_->InternUri(rdf::vocab::kSocial);
    rdf::TermId sub_p = terms_->InternUri(rdf::vocab::kSubPropertyOf);
    std::unordered_map<std::string, social::UserId> user_of_uri;
    for (const User& u : users_) user_of_uri.emplace(u.uri, u.id);
    auto import_triple = [&](const rdf::Triple& t) {
      if (terms_->Kind(t.object) != rdf::TermKind::kUri) return;
      auto from = user_of_uri.find(terms_->Text(t.subject));
      auto to = user_of_uri.find(terms_->Text(t.object));
      if (from == user_of_uri.end() || to == user_of_uri.end()) return;
      if (!(t.weight > 0.0 && t.weight <= 1.0)) return;
      edges_.Add(social::EntityId::User(from->second),
                 social::EntityId::User(to->second),
                 social::EdgeLabel::kSocial, t.weight);
      ++rdf_social_edges_;
    };
    // Weight-1 assertions of sub-properties were propagated to
    // S3:social by saturation; weighted assertions are not (inference
    // is restricted to weight 1), so pick them up from each
    // specialization directly.
    for (uint32_t idx : rdf_->WithProperty(social_p)) {
      import_triple(rdf_->triples()[idx]);
    }
    for (uint32_t sub_idx : rdf_->WithPropertyObject(sub_p, social_p)) {
      rdf::TermId p = rdf_->triples()[sub_idx].subject;
      if (p == social_p) continue;
      for (uint32_t idx : rdf_->WithProperty(p)) {
        const rdf::Triple& t = rdf_->triples()[idx];
        if (t.weight != 1.0) import_triple(t);
      }
    }
  }

  // 2. Entity layout over the final populations.
  layout_.emplace(static_cast<uint32_t>(users_.size()),
                  static_cast<uint32_t>(docs_.NodeCount()),
                  static_cast<uint32_t>(tags_.size()));

  // 3. Keyword -> fragment postings.
  index_.Rebuild(docs_);

  // 4. Normalized transition matrix and component partition.
  matrix_.Build(*layout_, edges_, docs_);
  components_.Build(*layout_, edges_, docs_);

  // 5. Keyword -> component directory (fragments containing k, tags
  // keyworded with k).
  comps_with_keyword_.clear();
  for (KeywordId k : index_.Keywords()) {
    auto& comps = CompsWithKeywordSlot(k);
    for (doc::NodeId n : index_.Postings(k)) {
      comps.push_back(components_.Of(EntityId::Fragment(n)));
    }
  }
  for (const Tag& tag : tags_) {
    if (tag.keyword == kInvalidKeyword) continue;
    CompsWithKeywordSlot(tag.keyword)
        .push_back(components_.Of(EntityId::Tag(tag.id)));
  }
  for (auto& [k, comps] : comps_with_keyword_) {
    std::sort(comps->begin(), comps->end());
    comps->erase(std::unique(comps->begin(), comps->end()), comps->end());
  }

  // 6. Reach partition over the completed edge log.
  BuildReach(/*first_new_edge=*/0);

  finalized_ = true;
  lineage_ = MintLineage();
  return Status::OK();
}

social::UserId S3Instance::OwnerOfEntity(social::EntityId e) const {
  switch (e.kind()) {
    case social::EntityKind::kUser:
      return e.index();
    case social::EntityKind::kFragment:
      return poster_of_[docs_.DocOf(e.index())];
    case social::EntityKind::kTag:
      return tags_[e.index()].author;
  }
  return UINT32_MAX;
}

uint32_t S3Instance::ReachRootOfComponent(social::ComponentId c) const {
  const uint32_t row = components_.Members(c).front();
  return reach_root_[OwnerOfEntity(layout().Entity(row))];
}

void S3Instance::BuildReach(uint32_t first_new_edge) {
  const uint32_t n_users = static_cast<uint32_t>(users_.size());
  if (first_new_edge == 0 || reach_parent_.size() != n_users) {
    reach_parent_.resize(n_users);
    for (uint32_t u = 0; u < n_users; ++u) reach_parent_[u] = u;
  }
  auto find = [&](uint32_t u) {
    while (reach_parent_[u] != u) {
      reach_parent_[u] = reach_parent_[reach_parent_[u]];  // halving
      u = reach_parent_[u];
    }
    return u;
  };
  for (uint32_t idx = first_new_edge; idx < edges_.size(); ++idx) {
    const social::NetEdge& e = edges_.edge(idx);
    const uint32_t a = find(OwnerOfEntity(e.source));
    const uint32_t b = find(OwnerOfEntity(e.target));
    if (a != b) reach_parent_[b] = a;
  }
  reach_root_.resize(n_users);
  for (uint32_t u = 0; u < n_users; ++u) reach_root_[u] = find(u);
}

const social::EntityLayout& S3Instance::layout() const {
  assert(layout_.has_value() && "layout available after Finalize only");
  return *layout_;
}

const std::vector<social::TagId>& S3Instance::TagsOn(
    social::EntityId subject) const {
  auto it = tags_on_.find(subject);
  return it == tags_on_.end() ? kNoTags : it->second;
}

const std::vector<doc::NodeId>& S3Instance::CommentsOnFragment(
    doc::NodeId target) const {
  auto it = comments_on_.find(target);
  return it == comments_on_.end() ? kNoComments : it->second;
}

doc::NodeId S3Instance::CommentTarget(doc::DocId d) const {
  return comment_target_[d];
}

std::vector<KeywordId> S3Instance::ExtendKeyword(KeywordId k) const {
  std::vector<KeywordId> out{k};
  const std::string& spelling = vocabulary_.Spelling(k);
  rdf::TermId term = terms_->Find(spelling, rdf::TermKind::kUri);
  if (term == rdf::kInvalidTerm) {
    // Literals can also be extension anchors (e.g. a class lexicalized
    // by a plain word).
    term = terms_->Find(spelling, rdf::TermKind::kLiteral);
  }
  if (term == rdf::kInvalidTerm) return out;
  for (rdf::TermId t : rdf::Extension(*terms_, *rdf_, term)) {
    if (t == term) continue;
    KeywordId kid = vocabulary_.Find(terms_->Text(t));
    if (kid != kInvalidKeyword && kid != k) out.push_back(kid);
  }
  return out;
}

std::vector<social::ComponentId>& S3Instance::CompsWithKeywordSlot(
    KeywordId k) {
  return MutableCow(comps_with_keyword_[k]);
}

Result<std::shared_ptr<const S3Instance>> S3Instance::FromSnapshot(
    SnapshotPopulation pop, SnapshotDerived derived) {
  auto bad = [](const std::string& why) {
    return Status::InvalidArgument("snapshot population: " + why);
  };
  if (pop.terms == nullptr || pop.rdf == nullptr) {
    return bad("missing term dictionary or RDF graph");
  }
  // Every saved instance pre-interned the S3 vocabulary at
  // construction; its absence means this is not an S3Instance term
  // dictionary at all.
  if (pop.terms->Find(rdf::vocab::kSocial, rdf::TermKind::kUri) ==
      rdf::kInvalidTerm) {
    return bad("term dictionary lacks the S3 vocabulary");
  }

  std::shared_ptr<S3Instance> inst(new S3Instance());
  inst->vocabulary_ = std::move(pop.vocabulary);
  inst->users_ = std::move(pop.users);
  inst->explicit_social_ = std::move(pop.explicit_social);
  inst->docs_ = std::move(pop.docs);
  inst->tags_ = std::move(pop.tags);
  inst->edges_ = std::move(pop.edges);
  inst->terms_ = std::move(pop.terms);
  inst->rdf_ = std::move(pop.rdf);

  const size_t n_users = inst->users_.size();
  const size_t n_nodes = inst->docs_.NodeCount();
  const size_t n_tags = inst->tags_.size();

  for (size_t i = 0; i < n_users; ++i) {
    if (inst->users_[i].id != i) return bad("user ids not dense");
  }
  for (const ExplicitSocialEdge& e : inst->explicit_social_) {
    if (e.from >= n_users || e.to >= n_users) {
      return bad("social edge endpoint out of range");
    }
    if (!(e.weight > 0.0 && e.weight <= 1.0)) {
      return bad("social edge weight outside (0,1]");
    }
  }
  if (pop.comment_target.size() != inst->docs_.DocumentCount()) {
    return bad("comment-target table size mismatch");
  }
  for (doc::DocId d = 0; d < pop.comment_target.size(); ++d) {
    doc::NodeId t = pop.comment_target[d];
    if (t == doc::kInvalidNode) continue;
    if (t >= n_nodes || inst->docs_.DocOf(t) == d) {
      return bad("comment target invalid for doc " + std::to_string(d));
    }
  }
  inst->comment_target_ = std::move(pop.comment_target);

  // Tag table, validated in id order while rebuilding the subject
  // lookup the population API maintains incrementally (push order ==
  // id order, so the reload is exact).
  for (size_t i = 0; i < n_tags; ++i) {
    const Tag& t = inst->tags_[i];
    if (t.id != i) return bad("tag ids not dense");
    if (t.author >= n_users) return bad("tag author out of range");
    if (t.keyword != kInvalidKeyword &&
        t.keyword >= inst->vocabulary_.size()) {
      return bad("tag keyword out of range");
    }
    switch (t.subject.kind()) {
      case social::EntityKind::kFragment:
        if (t.subject.index() >= n_nodes) {
          return bad("tag subject node out of range");
        }
        break;
      case social::EntityKind::kTag:
        if (t.subject.index() >= t.id) {
          return bad("tag subject must precede the tag");
        }
        break;
      default:
        return bad("tag subject must be a fragment or a tag");
    }
    inst->tags_on_[t.subject].push_back(t.id);
  }

  // Edge-log scan: endpoint range + label-signature validation, plus
  // the comments-on lookup — kCommentsOn edges appear in the log in
  // AddComment call order, so the scan reproduces the per-target push
  // order exactly. The kind check matters beyond tidiness: a
  // CRC-valid crafted snapshot could otherwise smuggle, say, a user
  // index into comments_on_, whose consumers index document
  // structures without re-checking.
  using EK = social::EntityKind;
  for (const social::NetEdge& e : inst->edges_.edges()) {
    auto in_range = [&](social::EntityId id) {
      switch (id.kind()) {
        case EK::kUser:
          return id.index() < n_users;
        case EK::kFragment:
          return id.index() < n_nodes;
        case EK::kTag:
          return id.index() < n_tags;
      }
      return false;
    };
    if (!in_range(e.source) || !in_range(e.target)) {
      return bad("edge endpoint out of range");
    }
    auto is = [&](social::EntityId id, EK kind) {
      return id.kind() == kind;
    };
    bool label_ok = false;
    switch (e.label) {
      case EdgeLabel::kSocial:
        label_ok = is(e.source, EK::kUser) && is(e.target, EK::kUser);
        break;
      case EdgeLabel::kPostedBy:
        label_ok = is(e.source, EK::kFragment) && is(e.target, EK::kUser);
        break;
      case EdgeLabel::kPostedByInv:
        label_ok = is(e.source, EK::kUser) && is(e.target, EK::kFragment);
        break;
      case EdgeLabel::kCommentsOn:
      case EdgeLabel::kCommentsOnInv:
        label_ok =
            is(e.source, EK::kFragment) && is(e.target, EK::kFragment);
        break;
      case EdgeLabel::kHasSubject:
        label_ok = is(e.source, EK::kTag) && !is(e.target, EK::kUser);
        break;
      case EdgeLabel::kHasSubjectInv:
        label_ok = !is(e.source, EK::kUser) && is(e.target, EK::kTag);
        break;
      case EdgeLabel::kHasAuthor:
        label_ok = is(e.source, EK::kTag) && is(e.target, EK::kUser);
        break;
      case EdgeLabel::kHasAuthorInv:
        label_ok = is(e.source, EK::kUser) && is(e.target, EK::kTag);
        break;
    }
    if (!label_ok) {
      return bad("edge endpoint kinds do not match label " +
                 std::string(social::EdgeLabelName(e.label)));
    }
    if (e.label == EdgeLabel::kCommentsOn) {
      inst->comments_on_[e.target.index()].push_back(e.source.index());
    }
    if (e.label == EdgeLabel::kPostedBy) {
      const doc::DocId d = inst->docs_.DocOf(e.source.index());
      if (inst->docs_.RootNode(d) == e.source.index()) {
        if (inst->poster_of_.size() <= d) inst->poster_of_.resize(d + 1, UINT32_MAX);
        inst->poster_of_[d] = e.target.index();
      }
    }
  }
  // Every document carries a postedBy edge from its root (AddDocument
  // invariant); the reach partition and the sharding layer rely on the
  // recovered poster table being total.
  inst->poster_of_.resize(inst->docs_.DocumentCount(), UINT32_MAX);
  for (doc::DocId d = 0; d < inst->poster_of_.size(); ++d) {
    if (inst->poster_of_[d] == UINT32_MAX) {
      return bad("document " + std::to_string(d) + " has no postedBy edge");
    }
  }

  S3_RETURN_IF_ERROR(inst->AttachDerived(std::move(derived)));
  return std::shared_ptr<const S3Instance>(std::move(inst));
}

Status S3Instance::AttachDerived(SnapshotDerived d) {
  S3_RETURN_IF_ERROR(RequireNotFinalized("AttachDerived"));
  auto bad = [](const std::string& why) {
    return Status::InvalidArgument("snapshot derived state: " + why);
  };
  if (d.lineage == 0 || d.lineage > (uint64_t{1} << 62)) {
    return bad("implausible lineage token");
  }

  layout_.emplace(static_cast<uint32_t>(users_.size()),
                  static_cast<uint32_t>(docs_.NodeCount()),
                  static_cast<uint32_t>(tags_.size()));

  // Inverted index: per-list invariants (sorted unique, node range)
  // were enforced by AdoptPostings while the codec parsed; only the
  // cross-structure keyword bound is left.
  for (KeywordId k : d.index.Keywords()) {
    if (k >= vocabulary_.size()) {
      return bad("inverted-index keyword out of range");
    }
  }
  index_ = std::move(d.index);

  S3_RETURN_IF_ERROR(matrix_.Adopt(
      std::move(d.matrix_row_ptr), std::move(d.matrix_cols),
      std::move(d.matrix_vals), std::move(d.matrix_denom),
      layout_->total()));
  S3_RETURN_IF_ERROR(
      components_.AdoptForest(*layout_, std::move(d.component_forest)));

  comps_with_keyword_.clear();
  bool first_entry = true;
  KeywordId prev = 0;
  for (auto& [k, comps] : d.comps_with_keyword) {
    if (k >= vocabulary_.size()) {
      return bad("keyword-directory keyword out of range");
    }
    if (!first_entry && k <= prev) {
      return bad("keyword directory not ascending");
    }
    first_entry = false;
    prev = k;
    if (comps.empty()) return bad("empty keyword-directory entry");
    for (size_t i = 0; i < comps.size(); ++i) {
      if (comps[i] >= components_.ComponentCount()) {
        return bad("keyword-directory component out of range");
      }
      if (i > 0 && comps[i] <= comps[i - 1]) {
        return bad("keyword-directory list not sorted unique");
      }
    }
    comps_with_keyword_[k] =
        std::make_shared<std::vector<social::ComponentId>>(
            std::move(comps));
  }

  // Derived, not serialized: the reach partition is a pure function of
  // the edge log and rebuilds in one scan (like the matrix transpose).
  BuildReach(/*first_new_edge=*/0);

  saturation_stats_ = d.saturation_stats;
  rdf_social_edges_ = d.rdf_social_edges;
  generation_ = d.generation;
  lineage_ = d.lineage;
  ReserveLineage(d.lineage);
  finalized_ = true;
  return Status::OK();
}

Result<std::shared_ptr<const S3Instance>> S3Instance::ApplyDelta(
    const InstanceDelta& delta) const {
  if (!finalized_) {
    return Status::FailedPrecondition("ApplyDelta on unfinalized instance");
  }
  if (delta.base().get() != this) {
    return Status::InvalidArgument(
        "delta was built against a different snapshot (generation " +
        std::to_string(delta.base_generation()) + ")");
  }

  // Pre-delta population marks, captured before any mutation.
  const uint32_t old_users = static_cast<uint32_t>(users_.size());
  const uint32_t old_nodes = static_cast<uint32_t>(docs_.NodeCount());
  const uint32_t old_tags = static_cast<uint32_t>(tags_.size());
  const doc::DocId first_new_doc =
      static_cast<doc::DocId>(docs_.DocumentCount());
  const uint32_t first_new_edge = static_cast<uint32_t>(edges_.size());
  std::vector<uint32_t> old_comp_rep;
  old_comp_rep.reserve(components_.ComponentCount());
  for (social::ComponentId c = 0; c < components_.ComponentCount(); ++c) {
    old_comp_rep.push_back(components_.Members(c).front());
  }

  // Structure-sharing copy, then replay the delta's operations through
  // the ordinary population API (identical ordering and validation to
  // a from-scratch rebuild of base ops + delta ops).
  std::shared_ptr<S3Instance> next(new S3Instance(*this));
  next->finalized_ = false;
  for (const std::string& spelling : delta.new_spellings()) {
    next->vocabulary_.Intern(spelling);
  }
  S3_RETURN_IF_ERROR(delta.Replay(*next));
  S3_RETURN_IF_ERROR(next->FinalizeIncremental(old_users, old_nodes,
                                               old_tags, first_new_doc,
                                               first_new_edge,
                                               old_comp_rep));
  next->generation_ = generation_ + 1;
  return std::shared_ptr<const S3Instance>(std::move(next));
}

Status S3Instance::FinalizeIncremental(
    uint32_t old_users, uint32_t old_nodes, uint32_t old_tags,
    doc::DocId first_new_doc, uint32_t first_new_edge,
    const std::vector<uint32_t>& old_comp_rep) {
  if (users_.size() != old_users) {
    return Status::Internal("deltas cannot add users");
  }
  const uint32_t new_nodes = static_cast<uint32_t>(docs_.NodeCount());
  const uint32_t n_new_frag = new_nodes - old_nodes;
  const uint32_t old_tag_base = old_users + old_nodes;

  // Saturation and the RDF social-edge import are skipped: deltas add
  // no triples, so the shared saturated graph is already final. (This
  // is also where exact rebuild equivalence gets its one caveat: a
  // rebuild appends RDF-imported social edges *after* the delta's
  // edges, so with rdf_social_edges() > 0 the edge log orders differ —
  // same edge multiset, but parallel-edge float accumulation may
  // differ in the last ulp.)

  // Layout over the grown populations; tag rows shift by n_new_frag.
  layout_.emplace(static_cast<uint32_t>(users_.size()),
                  static_cast<uint32_t>(docs_.NodeCount()),
                  static_cast<uint32_t>(tags_.size()));

  // Inverted index: append the new nodes' postings (copy-on-write).
  index_.AppendNodes(docs_, old_nodes);

  // Transition matrix: recompute only rows whose neighborhood gained
  // an out-edge (a new edge from entity s touches row(s), and — since
  // fragment rows also normalize over their vertical neighbors — the
  // rows of s's vertical neighborhood); splice everything else.
  std::vector<char> touched(layout_->total(), 0);
  for (uint32_t idx = first_new_edge; idx < edges_.size(); ++idx) {
    const social::NetEdge& e = edges_.edge(idx);
    touched[layout_->Row(e.source)] = 1;
    if (e.source.kind() == social::EntityKind::kFragment) {
      for (doc::NodeId v : docs_.VerticalNeighbors(e.source.index())) {
        touched[layout_->Row(EntityId::Fragment(v))] = 1;
      }
    }
  }
  matrix_.IncrementalUpdate(*layout_, edges_, docs_, touched, old_tag_base,
                            n_new_frag);

  // Component re-discovery for touched vertices: extend the persisted
  // union-find with the delta's partOf clusters and linking edges.
  components_.BuildIncremental(*layout_, edges_, docs_, first_new_doc,
                               first_new_edge, old_tag_base, n_new_frag);

  // Keyword -> component directory. Old component ids survive unless
  // the delta merged pre-existing components (a new comment or tag
  // chain bridging two of them); detect that via the representatives
  // and remap wholesale only then.
  std::vector<social::ComponentId> old_to_new(old_comp_rep.size());
  bool ids_changed = false;
  for (social::ComponentId c = 0; c < old_comp_rep.size(); ++c) {
    const uint32_t rep = old_comp_rep[c];
    const uint32_t new_rep = rep < old_tag_base ? rep : rep + n_new_frag;
    old_to_new[c] = components_.OfRow(new_rep);
    ids_changed |= old_to_new[c] != c;
  }
  std::unordered_set<KeywordId> dirty_keys;
  if (ids_changed) {
    for (auto& [k, comps] : comps_with_keyword_) {
      // Clone only lists the remap actually changes — most keywords
      // live far from the merged components and keep sharing their
      // list with the base.
      const bool affected =
          std::any_of(comps->begin(), comps->end(),
                      [&](social::ComponentId c) {
                        return old_to_new[c] != c;
                      });
      if (!affected) continue;
      for (social::ComponentId& c : MutableCow(comps)) {
        c = old_to_new[c];
      }
      dirty_keys.insert(k);
    }
  }
  for (doc::NodeId n = old_nodes; n < new_nodes; ++n) {
    const social::ComponentId c =
        components_.Of(EntityId::Fragment(n));
    for (KeywordId k : docs_.node(n).keywords) {
      CompsWithKeywordSlot(k).push_back(c);
      dirty_keys.insert(k);
    }
  }
  for (social::TagId t = old_tags; t < tags_.size(); ++t) {
    if (tags_[t].keyword == kInvalidKeyword) continue;
    CompsWithKeywordSlot(tags_[t].keyword)
        .push_back(components_.Of(EntityId::Tag(t)));
    dirty_keys.insert(tags_[t].keyword);
  }
  for (KeywordId k : dirty_keys) {
    auto& comps = CompsWithKeywordSlot(k);
    std::sort(comps.begin(), comps.end());
    comps.erase(std::unique(comps.begin(), comps.end()), comps.end());
  }

  // Reach partition: extend the inherited forest with the delta's
  // owner links only (the user set is fixed, so no remap is needed).
  BuildReach(first_new_edge);

  finalized_ = true;
  return Status::OK();
}

const std::vector<social::ComponentId>& S3Instance::ComponentsWithKeyword(
    KeywordId k) const {
  auto it = comps_with_keyword_.find(k);
  return it == comps_with_keyword_.end() ? kNoComponents : *it->second;
}

uint32_t S3Instance::RowOfUser(social::UserId u) const {
  return layout().Row(EntityId::User(u));
}
uint32_t S3Instance::RowOfFragment(doc::NodeId n) const {
  return layout().Row(EntityId::Fragment(n));
}
uint32_t S3Instance::RowOfTag(social::TagId t) const {
  return layout().Row(EntityId::Tag(t));
}

}  // namespace s3::core
