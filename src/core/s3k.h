// S3k: top-k keyword search over an S3 instance (paper §4).
//
// The instance is explored outward from the seeker in increasing
// social-path length. Iteration n computes the border frontier
// δ_u · Tⁿ (the paper's borderProx optimization, §5.2), folds it into
// the bounded social proximity allProx = prox≤n, and discovers the
// components — and hence candidate documents — the frontier touches.
// Each candidate carries a [lower, upper] score interval; a threshold
// bounds the best score any still-undiscovered document could reach.
// The search stops when the top-k candidate intervals separate from
// everything else (Algorithm 2 of the paper), or anytime on budget
// exhaustion, returning the current best k.
#ifndef S3_CORE_S3K_H_
#define S3_CORE_S3K_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/connections.h"
#include "core/s3_instance.h"
#include "core/score.h"

namespace s3::core {

// A keyword query (paper Definition 3.1): a seeker and a keyword set.
struct Query {
  social::UserId seeker = 0;
  std::vector<KeywordId> keywords;
};

struct S3kOptions {
  ScoreParams score;
  // Result size k.
  size_t k = 10;
  // Enable keyword extension Ext(k) (disable for ablations; the paper's
  // "semantic reachability" compares the two candidate sets).
  bool use_semantics = true;
  // Safety cap on exploration depth; the threshold-based stop condition
  // normally fires much earlier (it always did in the paper's runs).
  size_t max_iterations = 256;
  // Slack for floating-point comparisons in the stop condition; also
  // the de-facto tie-breaking precision (paper §4.2).
  double epsilon = 1e-12;
  // Worker threads for candidate building and bound refresh (§5.2
  // reports a ~2x speed-up with 8 threads).
  unsigned threads = 1;
  // Anytime termination (paper §4.1): stop after this wall-clock
  // budget and return the best k candidates by current upper bound.
  // 0 disables the budget.
  double time_budget_seconds = 0.0;
};

// One returned answer with its score interval at termination.
struct ResultEntry {
  doc::NodeId node = doc::kInvalidNode;
  double lower = 0.0;
  double upper = 0.0;
};

struct SearchStats {
  size_t iterations = 0;
  size_t components_passing = 0;
  size_t components_discovered = 0;
  size_t candidates_total = 0;
  size_t candidates_cleaned = 0;
  size_t extension_keywords = 0;  // Σ |Ext(k)| over query keywords
  bool converged = false;         // threshold-based stop reached
  double elapsed_seconds = 0.0;
  // All candidate documents of passing components (the candidate
  // universe used by the Fig. 8 quality metrics).
  std::vector<doc::NodeId> candidate_nodes;
};

class S3kSearcher {
 public:
  // `instance` must outlive the searcher and be finalized.
  S3kSearcher(const S3Instance& instance, S3kOptions options);

  // Runs the query; returns the top-k (possibly fewer if the instance
  // has fewer matching neighbor-free documents).
  Result<std::vector<ResultEntry>> Search(const Query& query,
                                          SearchStats* stats = nullptr);

  const S3kOptions& options() const { return options_; }

 private:
  const S3Instance& instance_;
  S3kOptions options_;
  // Persistent worker pool (created on first use when threads > 1).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace s3::core

#endif  // S3_CORE_S3K_H_
