// S3k: top-k keyword search over an S3 instance (paper §4).
//
// The instance is explored outward from the seeker in increasing
// social-path length. Iteration n computes the border frontier
// δ_u · Tⁿ (the paper's borderProx optimization, §5.2), folds it into
// the bounded social proximity allProx = prox≤n, and discovers the
// components — and hence candidate documents — the frontier touches.
// Each candidate carries a [lower, upper] score interval; a threshold
// bounds the best score any still-undiscovered document could reach.
// The search stops when the top-k candidate intervals separate from
// everything else (Algorithm 2 of the paper), or anytime on budget
// exhaustion, returning the current best k.
#ifndef S3_CORE_S3K_H_
#define S3_CORE_S3K_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/connections.h"
#include "core/s3_instance.h"
#include "core/score.h"
#include "obs/trace.h"
#include "social/transition_matrix.h"

namespace s3::core {

// A keyword query (paper Definition 3.1): a seeker and a keyword set.
// Legacy surface: QueryRequest (below) is the per-request API; a bare
// Query converts implicitly to a QueryRequest with default options
// (exact search, service-level k), so pre-existing call sites keep
// compiling unchanged.
struct Query {
  social::UserId seeker = 0;
  std::vector<KeywordId> keywords;
};

// How a request wants its answer terminated.
enum class QueryMode : uint8_t {
  // Run to the paper's threshold-based stop condition: the returned
  // top-k is provably the exact answer (modulo the engine's epsilon
  // tie-break slack).
  kExact = 0,
  // Certified (1-epsilon)-approximate: the search may stop as soon as
  //   remaining_upper <= (1 + epsilon_approx) * kth_lower,
  // i.e. no omitted document can beat the worst returned one by more
  // than a (1+epsilon) factor. The *achieved* certificate is reported
  // in SearchStats::certified_epsilon; with epsilon_approx = 0 the
  // anytime path is never taken and results are bit-for-bit the exact
  // search.
  kAnytime = 1,
};

// Per-request overrides riding on a QueryRequest. Everything here is
// resolved against the serving defaults (S3kOptions) at search time;
// zero values mean "inherit".
struct QueryOptions {
  // Result size; 0 inherits the searcher/service default (S3kOptions::k).
  size_t k = 0;
  // Certified approximation slack (kAnytime only; see QueryMode).
  double epsilon_approx = 0.0;
  // Wall-clock deadline for the *search* (queue wait excluded), in
  // seconds; 0 inherits the deprecated S3kOptions::time_budget_seconds
  // (normally: no deadline). An expired search returns the best k
  // found so far with SearchStats::deadline_exceeded set — in both
  // modes, matching the legacy anytime-budget behavior.
  double deadline_seconds = 0.0;
  QueryMode mode = QueryMode::kExact;
  // Record the engine's per-iteration bound-refinement story into
  // SearchStats::iteration_trace (observability only — never affects
  // the result). Off by default; the serving layer sets it for
  // sampled queries, so untraced queries pay nothing.
  bool trace = false;

  // InvalidArgument on non-finite / negative epsilon or deadline, or
  // epsilon_approx > 0 outside kAnytime.
  Status Validate() const;
};

// The per-request query surface: a seeker, a keyword set, and the
// options the caller wants *this* query answered under. Flows
// uniformly through S3kSearcher, server::QueryService and
// shard::ShardRouter.
struct QueryRequest {
  social::UserId seeker = 0;
  std::vector<KeywordId> keywords;
  QueryOptions options;

  QueryRequest() = default;
  QueryRequest(social::UserId s, std::vector<KeywordId> kw,
               QueryOptions opts = {})
      : seeker(s), keywords(std::move(kw)), options(opts) {}
  // Legacy adapter: a bare Query is an exact request with defaults.
  QueryRequest(const Query& q)  // NOLINT(google-explicit-constructor)
      : seeker(q.seeker), keywords(q.keywords) {}
};

struct S3kOptions {
  ScoreParams score;
  // Result size k.
  size_t k = 10;
  // Enable keyword extension Ext(k) (disable for ablations; the paper's
  // "semantic reachability" compares the two candidate sets).
  bool use_semantics = true;
  // Safety cap on exploration depth; the threshold-based stop condition
  // normally fires much earlier (it always did in the paper's runs).
  size_t max_iterations = 256;
  // Slack for floating-point comparisons in the stop condition; also
  // the de-facto tie-breaking precision (paper §4.2).
  double epsilon = 1e-12;
  // Worker threads for intra-query parallelism: candidate building,
  // propagation, bound refresh, and — for fat multi-component plans —
  // per-component fan-out of the whole iteration body (§5.2 reports a
  // ~2x speed-up with 8 threads; the component fan-out is what beats
  // it). 0 means "auto": std::thread::hardware_concurrency(), or the
  // serving layer's intra_thread_budget when the searcher runs under a
  // QueryService. The default 1 (serial) can be overridden for a whole
  // test/bench binary via the S3_TEST_THREADS environment variable
  // (parsed only when threads is left at 1; results are bit-for-bit
  // identical at every thread count, so the override is behaviorally
  // invisible).
  unsigned threads = 1;
  // DEPRECATED: use QueryOptions::deadline_seconds. Kept as an alias
  // so pre-QueryRequest deployments keep their anytime budget: a
  // request (or batch member) without its own deadline inherits this
  // value — ResolveLane / the engine's per-lane probe map it over, so
  // the two spellings cannot diverge. 0 disables the budget.
  double time_budget_seconds = 0.0;
};

// The seeker-independent half of query evaluation: semantic extension,
// passing components, and per-component candidates with their source
// lists (the paper's GetDocuments output). A plan depends only on the
// keyword multiset and the (use_semantics, eta) parameters — not on the
// seeker — so it can be built once and shared by every query over the
// same keywords. Plans are immutable after construction; SearchWithPlan
// never mutates one, which is what lets the serving layer cache them
// behind shared_ptr<const CandidatePlan> across threads.
//
// Because the score is a product over query keywords, permuting the
// keyword list permutes the plan's slots without changing any score:
// a plan built from the *sorted* keyword list answers any ordering of
// the same multiset (the proximity-cache canonicalization).
struct CandidatePlan {
  // Keywords the plan was built for, in slot order (ext[i] extends
  // keywords[i]).
  std::vector<KeywordId> keywords;
  QueryExtension ext;
  // Components in which every query keyword (or an extension member)
  // occurs, sorted; per_comp[i] holds the candidates of passing[i].
  std::vector<social::ComponentId> passing;
  std::vector<ComponentCandidates> per_comp;
  // Reach root of each passing component's owners (parallel to
  // `passing`): the per-shard / per-seeker score-bound export. A
  // component whose root differs from the seeker's can never be
  // discovered (no social path exists), so its cap is excluded from
  // the termination threshold — and a shard whose components all have
  // foreign roots reports a zero upper bound to the scatter-gather
  // merge without running the query.
  std::vector<uint32_t> comp_reach_root;
  size_t extension_keywords = 0;  // Σ |Ext(k)| over query keywords

  size_t n_keywords() const { return keywords.size(); }
};

// Builds the candidate plan for a keyword list: extension, passing
// components and per-component candidate construction. `pool` (may be
// null) parallelizes candidate building across components. Fails on an
// empty or oversized (> 64) keyword list or an unfinalized instance.
Result<CandidatePlan> BuildCandidatePlan(
    const S3Instance& instance, const std::vector<KeywordId>& keywords,
    bool use_semantics, double eta, ThreadPool* pool = nullptr);

// One returned answer with its score interval at termination.
struct ResultEntry {
  doc::NodeId node = doc::kInvalidNode;
  double lower = 0.0;
  double upper = 0.0;
};

struct SearchStats {
  size_t iterations = 0;
  size_t components_passing = 0;
  size_t components_discovered = 0;
  size_t candidates_total = 0;
  size_t candidates_cleaned = 0;
  size_t extension_keywords = 0;  // Σ |Ext(k)| over query keywords
  bool converged = false;         // threshold-based stop reached
  double elapsed_seconds = 0.0;
  // Score-bound export for distributed merging (src/shard): the
  // smallest lower bound among the returned entries, and an upper
  // bound on the score of every document *not* returned (max of the
  // non-returned candidates' uppers and the undiscovered-component
  // threshold at termination). A remote merger can drop this
  // instance's remainder whenever remaining_upper is below the global
  // k-th lower bound.
  double kth_lower = 0.0;
  double remaining_upper = 0.0;
  // The *achieved* certificate at termination: the smallest eps for
  // which "no omitted document beats the worst returned one by more
  // than (1+eps)" is provable from the bounds. 0 when the exact
  // stop's absolute slack holds (remaining_upper <= kth_lower +
  // S3kOptions::epsilon), else max(0, remaining_upper/kth_lower - 1).
  // Exact converged searches report 0; an anytime exit reports a
  // value <= the requested epsilon_approx (modulo one ulp of the
  // comparison); a deadline/iteration-capped search reports whatever
  // the bounds support — infinity when nothing is certifiable
  // (kth_lower == 0 with mass still undiscovered).
  double certified_epsilon = 0.0;
  // The lane's deadline (QueryOptions::deadline_seconds, or the legacy
  // time_budget_seconds) expired before convergence.
  bool deadline_exceeded = false;
  // Scheduling observability (NOT part of the bit-for-bit result
  // contract — it reports which schedule ran, which legitimately
  // differs across thread counts): the per-iteration body was sharded
  // across component slots (s3k.cc's cost-model verdict). Tests use it
  // to prove the parallel path was actually exercised.
  bool used_component_fanout = false;
  // All candidate documents of passing components (the candidate
  // universe used by the Fig. 8 quality metrics).
  std::vector<doc::NodeId> candidate_nodes;
  // Per-iteration bound-refinement records, filled only when the
  // request asked for tracing (QueryOptions::trace / BatchSeeker::
  // trace); empty — and unallocated — otherwise. Like
  // used_component_fanout this is scheduling/progress observability,
  // not part of the bit-for-bit result contract.
  std::vector<obs::IterationTraceRecord> iteration_trace;
};

// One member of a multi-seeker batch. `k == 0` means "use the
// searcher's options().k"; a per-member k lets same-keyword queries
// with different result sizes share one batch. epsilon_approx and
// deadline_seconds carry per-member QueryOptions through the lane
// machinery (0 = exact / inherit the legacy budget), so members with
// different certificates or deadlines still share one batch — an
// early-exiting lane drops out exactly like a converged one.
struct BatchSeeker {
  social::UserId seeker = 0;
  size_t k = 0;
  double epsilon_approx = 0.0;
  double deadline_seconds = 0.0;
  // Fill this lane's SearchStats::iteration_trace (observability only;
  // see QueryOptions::trace).
  bool trace = false;
};

// The effective per-lane parameters of `request` against the serving
// defaults: k == 0 inherits defaults.k, epsilon_approx applies only in
// kAnytime mode, and a zero deadline inherits the deprecated
// defaults.time_budget_seconds (the alias mapping with a single source
// of truth).
BatchSeeker ResolveLane(const QueryRequest& request,
                        const S3kOptions& defaults);

// Per-member result of a batched search: exactly what SearchWithPlan
// plus its SearchStats out-param would have produced for that member
// alone (bit-for-bit — batch composition is never observable).
struct BatchQueryResult {
  std::vector<ResultEntry> entries;
  SearchStats stats;
};

// A reusable query worker. One searcher answers one query (or one
// batch) at a time; it keeps per-worker scratch (the exploration
// frontiers, the candidate ordering buffers, and the intra-query
// thread pool) alive across queries so the steady state allocates
// nothing per query outside the bound engine. Distinct searchers over
// the same const S3Instance are independent and may run concurrently —
// the serving layer (server/query_service.h) pools N of them over one
// shared snapshot.
class S3kSearcher {
 public:
  // Batch-width cap for SearchBatchWithPlan (lane-padded widths must
  // fit social::kMaxFrontierLanes).
  static constexpr size_t kMaxBatch = 32;

  // `instance` must outlive the searcher and be finalized.
  S3kSearcher(const S3Instance& instance, S3kOptions options);

  // Runs the request; returns the top-k (possibly fewer if the
  // instance has fewer matching neighbor-free documents). Builds the
  // candidate plan itself — equivalent to BuildCandidatePlan +
  // SearchWithPlan. Takes any QueryRequest (a bare core::Query
  // converts to an exact request with default options).
  Result<std::vector<ResultEntry>> Search(const QueryRequest& query,
                                          SearchStats* stats = nullptr);

  // Runs the exploration loop over a prebuilt (possibly shared/cached)
  // plan. The plan must have been built over this searcher's instance
  // with the same use_semantics / eta; only `query.seeker` and
  // `query.options` are read — the plan's keyword slots stand in for
  // `query.keywords` (any permutation of the plan's keyword multiset
  // scores identically).
  Result<std::vector<ResultEntry>> SearchWithPlan(const QueryRequest& query,
                                                  const CandidatePlan& plan,
                                                  SearchStats* stats = nullptr);

  // Multi-seeker exploration: answers every batch member against one
  // shared plan in a single engine pass — one candidate-structure
  // build, one CSR walk per iteration carrying all seeker lanes (SoA;
  // see bound_engine.h). Results are bit-for-bit identical to running
  // SearchWithPlan per member: lanes are arithmetically independent,
  // and a converged member drops out of the batch (its frontier lane
  // is zeroed) without perturbing the others. Batch size must be in
  // [1, kMaxBatch]; members may repeat seekers and mix k values,
  // epsilon certificates and deadlines (per-lane anytime exits and
  // deadline expiry use the same dropout machinery as convergence, so
  // mixed-options batches stay bit-for-bit equal to solo runs).
  // SearchWithPlan is this with a batch of one.
  Result<std::vector<BatchQueryResult>> SearchBatchWithPlan(
      const std::vector<BatchSeeker>& batch, const CandidatePlan& plan);

  const S3kOptions& options() const { return options_; }

  // The searcher's intra-query thread pool (null when threads <= 1).
  // Exposed so the serving layer can reuse it for cache-miss plan
  // builds instead of building plans single-threaded.
  ThreadPool* intra_pool() const { return pool_.get(); }

  // Caps the effective intra-query concurrency (caller + pool helpers)
  // of subsequent searches without resizing the pool; 0 removes the
  // cap. The serving layer calls this per dequeued query to divide the
  // machine's thread budget among currently-busy workers — a solo
  // query on an idle service gets the whole pool. Must not be called
  // while this searcher is mid-search (one searcher runs one query at
  // a time). Results are unaffected (bit-for-bit at every limit).
  void set_thread_limit(unsigned limit) { thread_limit_ = limit; }
  unsigned thread_limit() const { return thread_limit_; }

 private:
  // Sorted entity rows whose owner's reach root is `root` — the only
  // rows a frontier seeded at such a user can ever hold mass on, hence
  // a sound pull restriction for PropagateBatchAdaptive. Built lazily
  // (one pass over the layout) on the first fat query that wants it.
  const std::vector<uint32_t>& RowsOfReachRoot(uint32_t root);

  const S3Instance& instance_;
  S3kOptions options_;
  // Persistent worker pool for intra-query parallelism (created in the
  // constructor when threads > 1, so Search never mutates structure).
  std::unique_ptr<ThreadPool> pool_;
  // Per-worker scratch reused across queries (reset at query start).
  // The single-seeker path runs through the same lane-batched
  // frontiers at lane count 1.
  social::BatchFrontier frontier_, next_;
  // Per-lane active candidates by upper desc.
  std::vector<std::vector<uint32_t>> orders_;
  // Per-(slot, lane) sorted partial orders the component fan-out merges
  // at the iteration barrier (indexed [slot * batch_size + lane]).
  std::vector<std::vector<uint32_t>> slot_orders_;
  // Effective-concurrency cap (see set_thread_limit; 0 = uncapped).
  unsigned thread_limit_ = 0;
  // Lazy reach-root → member-rows index for pull-restricted
  // propagation (keyed by reach root; rows ascending).
  std::unordered_map<uint32_t, std::vector<uint32_t>> rows_by_root_;
  bool rows_by_root_built_ = false;
};

}  // namespace s3::core

#endif  // S3_CORE_S3K_H_
