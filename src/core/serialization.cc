#include "core/serialization.h"

#include <cstdio>
#include <vector>

#include "common/str_util.h"
#include "rdf/ntriples.h"
#include "social/entity.h"

namespace s3::core {

namespace {

// Token escaping: '%', ' ', '\n', '\t' -> %XX.
std::string EscapeToken(std::string_view in) {
  std::string out;
  for (char c : in) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\t' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeToken(std::string_view in) {
  std::string out;
  for (size_t i = 0; i < in.size();) {
    if (in[i] == '%') {
      // Both hex digits must be inside the token.
      if (i + 2 >= in.size()) {
        return Status::InvalidArgument("truncated %-escape");
      }
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(in[i + 1]);
      int lo = hex(in[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("bad %-escape");
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 3;
    } else {
      out.push_back(in[i++]);
    }
  }
  return out;
}

// Poster of each document (via the S3:postedBy edges).
std::vector<social::UserId> PosterOfDoc(const S3Instance& inst) {
  std::vector<social::UserId> poster(inst.docs().DocumentCount(),
                                     UINT32_MAX);
  for (const social::NetEdge& e : inst.edges().edges()) {
    if (e.label == social::EdgeLabel::kPostedBy &&
        e.source.kind() == social::EntityKind::kFragment) {
      doc::DocId d = inst.docs().DocOf(e.source.index());
      if (inst.docs().RootNode(d) == e.source.index()) {
        poster[d] = e.target.index();
      }
    }
  }
  return poster;
}

}  // namespace

std::string SaveInstance(const S3Instance& inst) {
  std::string out = "S3 v1\n";
  char buf[64];

  // Keyword table (ids are dense; order preserves them on reload).
  for (KeywordId k = 0; k < inst.vocabulary().size(); ++k) {
    out += "KW " + EscapeToken(inst.vocabulary().Spelling(k)) + "\n";
  }
  for (const User& u : inst.users()) {
    out += "USER " + EscapeToken(u.uri) + "\n";
  }
  for (const auto& e : inst.explicit_social_edges()) {
    std::snprintf(buf, sizeof(buf), "SOCIAL %u %u %.17g\n", e.from, e.to,
                  e.weight);
    out += buf;
  }

  std::vector<social::UserId> poster = PosterOfDoc(inst);
  for (doc::DocId d = 0; d < inst.docs().DocumentCount(); ++d) {
    const doc::Document& document = inst.docs().document(d);
    std::snprintf(buf, sizeof(buf), " %u %zu\n", poster[d],
                  document.NodeCount());
    out += "DOC " + EscapeToken(inst.docs().Uri(inst.docs().RootNode(d))) +
           buf;
    for (uint32_t local = 0; local < document.NodeCount(); ++local) {
      const doc::Node& node = document.node(local);
      out += "N ";
      if (node.parent == UINT32_MAX) {
        out += "-";
      } else {
        out += std::to_string(node.parent);
      }
      out += " " + EscapeToken(node.name);
      for (KeywordId k : node.keywords) {
        out += " " + std::to_string(k);
      }
      out += "\n";
    }
  }
  for (doc::DocId d = 0; d < inst.docs().DocumentCount(); ++d) {
    doc::NodeId target = inst.CommentTarget(d);
    if (target != doc::kInvalidNode) {
      std::snprintf(buf, sizeof(buf), "COMMENT %u %u\n", d, target);
      out += buf;
    }
  }
  for (const Tag& t : inst.tags()) {
    const char* kind =
        t.subject.kind() == social::EntityKind::kFragment ? "TAGF" : "TAGT";
    out += kind;
    std::snprintf(buf, sizeof(buf), " %u %u ", t.author,
                  t.subject.index());
    out += buf;
    if (t.keyword == kInvalidKeyword) {
      out += "-";
    } else {
      out += std::to_string(t.keyword);
    }
    out += "\n";
  }
  out += "RDF\n";
  out += rdf::SerializeNTriples(inst.terms(), inst.rdf_graph());
  return out;
}

Result<std::unique_ptr<S3Instance>> LoadInstance(std::string_view text) {
  auto inst = std::make_unique<S3Instance>();
  size_t line_no = 0;
  size_t start = 0;
  bool saw_header = false;

  // Document assembly state.
  std::optional<doc::Document> pending_doc;
  std::string pending_uri;
  social::UserId pending_poster = 0;
  size_t pending_nodes = 0;
  size_t seen_nodes = 0;

  auto flush_doc = [&]() -> Status {
    if (!pending_doc.has_value()) return Status::OK();
    if (seen_nodes != pending_nodes) {
      return Status::InvalidArgument("DOC " + pending_uri +
                                     ": node count mismatch");
    }
    Result<doc::DocId> added = inst->AddDocument(
        std::move(*pending_doc), pending_uri, pending_poster);
    pending_doc.reset();
    if (!added.ok()) return added.status();
    return Status::OK();
  };

  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    if (!saw_header) {
      if (line != "S3 v1") {
        return Status::InvalidArgument("bad header: expected 'S3 v1'");
      }
      saw_header = true;
      continue;
    }

    if (line == "RDF") {
      S3_RETURN_IF_ERROR(flush_doc());
      // The rest of the input is N-Triples.
      auto parsed = rdf::ParseNTriples(text.substr(start), inst->terms(),
                                       inst->rdf_graph());
      if (!parsed.ok()) return parsed.status();
      return inst;
    }

    std::vector<std::string> tok = Split(line, " ");
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + why);
    };
    // Strict numeric parsing: a corrupt dump (bit flips, truncation,
    // garbage) must surface as InvalidArgument with the line number,
    // never as a throw out of std::stoul/stod.
    bool parse_ok = true;
    auto u32 = [&](const std::string& t) -> uint32_t {
      uint32_t v = 0;
      if (!ParseU32(t, &v)) parse_ok = false;
      return v;
    };
    auto f64 = [&](const std::string& t) -> double {
      double v = 0.0;
      if (!ParseDouble(t, &v)) parse_ok = false;
      return v;
    };
    if (tok.empty()) continue;

    if (tok[0] == "KW") {
      if (tok.size() != 2) return fail("KW takes one token");
      Result<std::string> sp = UnescapeToken(tok[1]);
      if (!sp.ok()) return sp.status();
      inst->InternKeyword(*sp);
    } else if (tok[0] == "USER") {
      if (tok.size() != 2) return fail("USER takes one token");
      Result<std::string> uri = UnescapeToken(tok[1]);
      if (!uri.ok()) return uri.status();
      inst->AddUser(*uri);
    } else if (tok[0] == "SOCIAL") {
      if (tok.size() != 4) return fail("SOCIAL takes 3 tokens");
      const social::UserId from = u32(tok[1]);
      const social::UserId to = u32(tok[2]);
      const double weight = f64(tok[3]);
      if (!parse_ok) return fail("SOCIAL: malformed number");
      Status s = inst->AddSocialEdge(from, to, weight);
      if (!s.ok()) return s;
    } else if (tok[0] == "DOC") {
      S3_RETURN_IF_ERROR(flush_doc());
      if (tok.size() != 4) return fail("DOC takes 3 tokens");
      Result<std::string> uri = UnescapeToken(tok[1]);
      if (!uri.ok()) return uri.status();
      pending_uri = *uri;
      pending_poster = u32(tok[2]);
      pending_nodes = u32(tok[3]);
      if (!parse_ok) return fail("DOC: malformed number");
      seen_nodes = 0;
    } else if (tok[0] == "N") {
      if (!pending_doc.has_value() && seen_nodes > 0) {
        return fail("N outside DOC");
      }
      if (tok.size() < 3) return fail("N takes at least 2 tokens");
      Result<std::string> name = UnescapeToken(tok[2]);
      if (!name.ok()) return name.status();
      uint32_t local;
      if (tok[1] == "-") {
        if (pending_doc.has_value()) return fail("second root node");
        pending_doc.emplace(*name);
        local = 0;
      } else {
        if (!pending_doc.has_value()) return fail("child before root");
        const uint32_t parent = u32(tok[1]);
        if (!parse_ok) return fail("N: malformed parent index");
        if (parent >= pending_doc->NodeCount()) {
          return fail("N: parent index out of range");
        }
        local = pending_doc->AddChild(parent, *name);
      }
      std::vector<KeywordId> kws;
      for (size_t i = 3; i < tok.size(); ++i) {
        KeywordId k = u32(tok[i]);
        if (!parse_ok) return fail("N: malformed keyword id");
        if (k >= inst->vocabulary().size()) {
          return fail("keyword id out of range");
        }
        kws.push_back(k);
      }
      pending_doc->AddKeywords(local, kws);
      ++seen_nodes;
    } else if (tok[0] == "COMMENT") {
      S3_RETURN_IF_ERROR(flush_doc());
      if (tok.size() != 3) return fail("COMMENT takes 2 tokens");
      const doc::DocId comment = u32(tok[1]);
      const doc::NodeId target = u32(tok[2]);
      if (!parse_ok) return fail("COMMENT: malformed number");
      Status s = inst->AddComment(comment, target);
      if (!s.ok()) return s;
    } else if (tok[0] == "TAGF" || tok[0] == "TAGT") {
      S3_RETURN_IF_ERROR(flush_doc());
      if (tok.size() != 4) return fail("TAG takes 3 tokens");
      social::UserId author = u32(tok[1]);
      uint32_t subject = u32(tok[2]);
      KeywordId kw = tok[3] == "-" ? kInvalidKeyword : u32(tok[3]);
      if (!parse_ok) return fail("TAG: malformed number");
      if (tok[0] == "TAGF") {
        auto r = inst->AddTagOnFragment(author, subject, kw);
        if (!r.ok()) return r.status();
      } else {
        auto r = inst->AddTagOnTag(author, subject, kw);
        if (!r.ok()) return r.status();
      }
    } else {
      return fail("unknown record '" + tok[0] + "'");
    }
  }
  S3_RETURN_IF_ERROR(flush_doc());
  return inst;
}

}  // namespace s3::core
