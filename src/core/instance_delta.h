// InstanceDelta: a batch of population growth against one finalized
// S3Instance snapshot — the write side of the live-update pipeline.
//
// The paper's setting is a dynamic social network: documents, tags and
// social edges arrive continuously. A delta records such arrivals
// (new documents with their keywords, new comment/tag/social edges —
// endpoints may be pre-existing entities, new keyword spellings via
// the interning overlay) validated against the base snapshot, without
// mutating it. S3Instance::ApplyDelta(delta) then produces a *new*
// finalized snapshot by structural sharing: copy-on-write of the
// touched inverted-index postings, edge-store chunks/adjacency rows
// and transition-matrix rows, incremental component re-discovery —
// never a full rebuild. The base snapshot stays immutable and
// queryable throughout, which is what lets the serving layer
// (server/QueryService::SwapSnapshot) hot-swap generations mid-traffic.
//
// Id spaces: a delta continues the base's id spaces. New documents,
// nodes, tags and keywords receive the ids a from-scratch rebuild
// (base operations then delta operations, in order) would assign, so
// callers can wire delta entities together (e.g. tag a document added
// earlier in the same delta) and results over the applied snapshot are
// directly comparable to a rebuilt instance.
//
// Deltas deliberately cannot add users or ontology triples: user rows
// prefix the entity-row space (appending would renumber every
// fragment/tag row) and the saturated RDF graph is shared wholesale
// across generations. Grow either by building a fresh instance.
#ifndef S3_CORE_INSTANCE_DELTA_H_
#define S3_CORE_INSTANCE_DELTA_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/s3_instance.h"

namespace s3::core {

class InstanceDelta {
 public:
  // `base` must be finalized and non-null; the delta validates every
  // operation against it (plus the delta's own accumulated state).
  explicit InstanceDelta(std::shared_ptr<const S3Instance> base);

  // Keyword interning overlay: resolves against the base vocabulary
  // first; unseen spellings get the ids the successor snapshot will
  // assign (base size, base size + 1, ...).
  KeywordId InternKeyword(std::string_view keyword);
  std::vector<KeywordId> InternText(std::string_view text);

  // Population growth, mirroring the S3Instance API. Returned ids are
  // the ids the entities will have in the applied snapshot.
  Result<doc::DocId> AddDocument(doc::Document document, std::string uri,
                                 social::UserId poster);
  Status AddComment(doc::DocId comment, doc::NodeId target);
  Result<social::TagId> AddTagOnFragment(social::UserId author,
                                         doc::NodeId subject,
                                         KeywordId keyword);
  Result<social::TagId> AddTagOnTag(social::UserId author,
                                    social::TagId subject,
                                    KeywordId keyword);
  Status AddSocialEdge(social::UserId from, social::UserId to,
                       double weight);

  const std::shared_ptr<const S3Instance>& base() const { return base_; }
  uint64_t base_generation() const {
    return base_ == nullptr ? 0 : base_->generation();
  }

  bool empty() const { return order_.empty(); }
  size_t op_count() const { return order_.size(); }
  size_t new_document_count() const { return docs_.size(); }
  size_t new_tag_count() const { return tags_.size(); }
  size_t new_social_edge_count() const { return socials_.size(); }
  size_t new_node_count() const { return new_nodes_; }

  // Overlay spellings in id order (first one gets id base-vocab-size).
  const std::vector<std::string>& new_spellings() const {
    return spellings_;
  }

  // Replays every recorded operation, in order, against `target` — the
  // successor instance under construction. Called by
  // S3Instance::ApplyDelta; the target's own validation runs again, so
  // a corrupted delta surfaces as an error, not silent misapplication.
  Status Replay(S3Instance& target) const;

  // ---- WAL serialization ----------------------------------------------
  //
  // A delta serializes as one *self-delimiting* record:
  //
  //   u32 magic · u64 payload size · u32 CRC-32(payload) · payload
  //
  // where the payload opens with the (generation, lineage) of the base
  // snapshot the delta was built against, followed by the interning
  // overlay and the op log in order. Self-delimiting framing is what
  // gives the server's write-ahead log its crash semantics: recovery
  // replays records until the first truncated or corrupt frame and
  // discards the tail (server/snapshot_manager.h).

  // Frame-level view of the record at the head of `bytes`, without
  // decoding the ops — recovery uses it to skip records already
  // covered by a snapshot. InvalidArgument on a truncated or corrupt
  // frame.
  struct WalRecordInfo {
    uint64_t base_generation = 0;
    uint64_t base_lineage = 0;
    size_t record_bytes = 0;  // full frame size, header included
  };
  static Result<WalRecordInfo> PeekWalRecord(std::string_view bytes);

  // Appends this delta as one WAL record to `out`.
  void EncodeWalRecord(std::string* out) const;

  // Decodes the record at the head of `bytes` into a delta against
  // `base` (which must be finalized and match the record's generation
  // and lineage). Every op is rebuilt through the validating
  // InstanceDelta API, so a corrupt payload that survives the checksum
  // still comes back InvalidArgument, never a malformed delta. On
  // success `*consumed` is the frame size.
  static Result<InstanceDelta> DecodeWalRecord(
      std::string_view bytes, size_t* consumed,
      std::shared_ptr<const S3Instance> base);

 private:
  enum class OpKind : uint8_t { kDocument, kComment, kTag, kSocial };

  struct DocOp {
    doc::Document document;
    std::string uri;
    social::UserId poster;
  };
  struct CommentOp {
    doc::DocId comment;
    doc::NodeId target;
  };
  struct TagOp {
    social::UserId author;
    uint32_t subject;  // NodeId or TagId, by on_tag
    KeywordId keyword;
    bool on_tag;
  };
  struct SocialOp {
    social::UserId from;
    social::UserId to;
    double weight;
  };

  // Release-build guard on the ctor's precondition (its assert is
  // compiled out under NDEBUG); every mutating entry point calls it.
  Status CheckBase() const;

  size_t CombinedDocCount() const;
  size_t CombinedNodeCount() const;
  size_t CombinedTagCount() const;
  size_t CombinedKeywordCount() const;
  // DocId owning `node` in the combined id space (kInvalidDoc if the
  // node does not exist).
  doc::DocId CombinedDocOf(doc::NodeId node) const;
  Status ValidateKeyword(KeywordId keyword) const;

  std::shared_ptr<const S3Instance> base_;

  // Operation log: per-type payloads plus the interleaving order, so
  // Replay reproduces the exact sequence (edge insertion order is part
  // of rebuild equivalence).
  std::vector<OpKind> order_;
  std::vector<DocOp> docs_;
  std::vector<CommentOp> comments_;
  std::vector<TagOp> tags_;
  std::vector<SocialOp> socials_;

  // Interning overlay.
  std::vector<std::string> spellings_;
  std::unordered_map<std::string, KeywordId> overlay_index_;

  // Accumulated delta-side id state.
  size_t new_nodes_ = 0;
  std::vector<doc::NodeId> doc_first_node_;  // per delta doc
  std::unordered_set<std::string> new_uris_;
};

}  // namespace s3::core

#endif  // S3_CORE_INSTANCE_DELTA_H_
