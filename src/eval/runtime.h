// Helpers for the benchmark harnesses: per-workload run-time
// aggregation and fixed-width table rendering of the paper's figures.
#ifndef S3_EVAL_RUNTIME_H_
#define S3_EVAL_RUNTIME_H_

#include <string>
#include <vector>

#include "common/stats.h"

namespace s3::eval {

// Collects per-query wall-clock times for one (workload, system,
// parameter) cell of a figure.
class RuntimeSeries {
 public:
  void Add(double seconds) { seconds_.push_back(seconds); }
  bool empty() const { return seconds_.empty(); }
  double MedianSeconds() const;
  QuartileSummary Quartiles() const;
  const std::vector<double>& samples() const { return seconds_; }

 private:
  std::vector<double> seconds_;
};

// Simple fixed-width text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats seconds with millisecond precision, e.g. "0.123".
std::string FormatSeconds(double s);

// Formats seconds as milliseconds with two decimals, e.g. "12.34".
std::string FormatMillis(double s);

// Formats a ratio as a percentage, e.g. "12.3%".
std::string FormatPercent(double ratio);

}  // namespace s3::eval

#endif  // S3_EVAL_RUNTIME_H_
