// Result-quality metrics from the paper's §5.4 comparison (Figure 8).
#ifndef S3_EVAL_METRICS_H_
#define S3_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace s3::eval {

// Spearman's foot rule distance between two top-k lists, as defined in
// the paper:
//   L1(τ1,τ2) = 2(k−|τ1∩τ2|)(k+1)
//             + Σ_{i∈τ1∩τ2} |τ1(i)−τ2(i)|
//             − Σ_{τ∈{τ1,τ2}} Σ_{i∈τ∖(τ1∩τ2)} τ(i)
// with τ(i) the 1-based rank of item i. k is max(|τ1|,|τ2|).
double SpearmanFootRule(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b);

// Foot rule normalized to [0, 1]: raw / (k·(k+1)), the distance between
// disjoint lists. Returns 0 for two empty lists.
double SpearmanFootRuleNormalized(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b);

// |a ∩ b| / max(|a|, |b|); 0 when both are empty.
double IntersectionRatio(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b);

// Fraction of `universe` not present in `reachable` (the paper's
// "graph reachability": candidates of one engine the other cannot
// reach). Returns 0 for an empty universe.
double UnreachableFraction(const std::vector<uint64_t>& universe,
                           const std::vector<uint64_t>& reachable);

}  // namespace s3::eval

#endif  // S3_EVAL_METRICS_H_
