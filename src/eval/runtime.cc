#include "eval/runtime.h"

#include <cstdio>
#include <sstream>

namespace s3::eval {

double RuntimeSeries::MedianSeconds() const {
  return Quantile(seconds_, 0.5);
}

QuartileSummary RuntimeSeries::Quartiles() const {
  return Summarize(seconds_);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < width.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::vector<std::string> rule;
  for (size_t c = 0; c < width.size(); ++c) {
    rule.push_back(std::string(width[c], '-'));
  }
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string FormatMillis(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s * 1e3);
  return buf;
}

std::string FormatPercent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

}  // namespace s3::eval
