// Service-level throughput and latency aggregation for the concurrent
// query service: per-query latencies recorded by N worker/client
// threads, summarized as QPS and tail percentiles (p50/p90/p99) — the
// numbers bench_server_throughput reports and BENCH_server.json
// records.
//
// RuntimeSeries (runtime.h) stays the single-threaded per-figure
// collector; LatencyRecorder is its thread-safe sibling for the
// serving path, where many threads complete queries concurrently.
#ifndef S3_EVAL_SERVICE_STATS_H_
#define S3_EVAL_SERVICE_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace s3::eval {

// Point-in-time summary of a service run. Latencies in milliseconds;
// qps derived from the caller-supplied wall-clock window.
struct LatencySnapshot {
  size_t count = 0;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

// Thread-safe latency recorder. Add() is called from any number of
// threads; TakeSnapshot() copies the samples under the lock and
// summarizes outside it.
//
// Memory is bounded: the recorder keeps the most recent
// `window_capacity` samples in a ring (percentiles are over that
// sliding window) while the total count — and hence QPS — covers every
// Add() since construction/Reset(). A long-lived QueryService can
// therefore record forever without accreting memory.
class LatencyRecorder {
 public:
  static constexpr size_t kDefaultWindow = 1 << 16;

  explicit LatencyRecorder(size_t window_capacity = kDefaultWindow)
      : window_capacity_(window_capacity < 1 ? 1 : window_capacity) {}

  void Add(double seconds);

  // Total samples ever recorded (not capped by the window).
  size_t count() const;

  // Summarizes against a wall-clock window of `elapsed_seconds` (for
  // QPS, computed from the total count). Percentiles cover the last
  // min(count, window_capacity) samples. Zero-sample snapshots are
  // all-zero.
  LatencySnapshot TakeSnapshot(double elapsed_seconds) const;

  void Reset();

 private:
  const size_t window_capacity_;
  mutable std::mutex mutex_;
  std::vector<double> samples_;  // ring once it reaches capacity
  size_t next_slot_ = 0;         // ring write cursor
  size_t total_count_ = 0;
};

// One-line human-readable rendering, e.g.
// "n=1200 qps=483.1 p50=1.92ms p90=3.10ms p99=7.45ms".
std::string FormatSnapshot(const LatencySnapshot& s);

// Operational health counters of a serving endpoint, alongside the
// latency numbers: admission-control rejections (queue-full
// Unavailable refusals — load shed, invisible in latency data because
// the queries never ran) and plan-cache effectiveness. QueryService
// fills one per Stats() call; benches and operators print it with
// FormatCounters.
struct ServiceCounters {
  uint64_t rejected_queue_full = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Multi-seeker batching (query_service.h batch_window): queries
  // answered as part of a width >= 2 batch, and how many such batches
  // ran. Width-1 passes count in neither — the ratio is the mean width
  // of the batches that actually amortized work.
  uint64_t batched_queries = 0;
  uint64_t batches_executed = 0;
  // Anytime serving (core::QueryMode::kAnytime): completed requests
  // that asked for a certified (1-eps) answer, and completed requests
  // (either mode) whose search deadline expired before convergence.
  uint64_t anytime_queries = 0;
  uint64_t deadline_exceeded = 0;
  // Histogram of the *achieved* certificate
  // (SearchStats::certified_epsilon) over every completed query;
  // bucket bounds via CertifiedEpsilonBucket below. Exact converged
  // answers land in the leftmost buckets, deadline-truncated searches
  // drift right (the last bucket includes uncertified/infinity).
  static constexpr size_t kEpsBuckets = 6;
  std::array<uint64_t, kEpsBuckets> certified_eps_hist{};

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }

  double MeanBatchWidth() const {
    return batches_executed == 0
               ? 0.0
               : static_cast<double>(batched_queries) / batches_executed;
  }
};

// Bucket index of an achieved certificate for
// ServiceCounters::certified_eps_hist. Bounds (inclusive uppers):
//   0: <= 1e-9 (exact)   1: <= 1e-6   2: <= 1e-3
//   3: <= 1e-2           4: <= 1e-1   5: > 1e-1 (incl. infinity)
size_t CertifiedEpsilonBucket(double eps);

// Human-readable label of a certified_eps_hist bucket, e.g. "<=1e-6".
const char* CertifiedEpsilonBucketLabel(size_t bucket);

// e.g. "rejected=12 cache=873/1024 (85.3% hit) batched=96/24 (4.0 avg)
// anytime=64 deadline_exceeded=2 eps[<=1e-9]=120 eps[<=1e-2]=64";
// cache part reads "cache=off" when the service runs without one (both
// counters zero); the batched part is omitted when no batch ever
// formed; the anytime part (counters + the non-empty histogram
// buckets) is omitted until an anytime query or a deadline expiry is
// seen.
std::string FormatCounters(const ServiceCounters& c);

}  // namespace s3::eval

#endif  // S3_EVAL_SERVICE_STATS_H_
