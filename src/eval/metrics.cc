#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace s3::eval {

namespace {

std::unordered_map<uint64_t, size_t> RankOf(
    const std::vector<uint64_t>& list) {
  std::unordered_map<uint64_t, size_t> rank;
  for (size_t i = 0; i < list.size(); ++i) {
    rank.emplace(list[i], i + 1);  // 1-based
  }
  return rank;
}

}  // namespace

double SpearmanFootRule(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
  const size_t k = std::max(a.size(), b.size());
  if (k == 0) return 0.0;
  auto rank_a = RankOf(a);
  auto rank_b = RankOf(b);

  double common_term = 0.0;
  size_t n_common = 0;
  double missing_term = 0.0;
  for (const auto& [item, ra] : rank_a) {
    auto it = rank_b.find(item);
    if (it != rank_b.end()) {
      ++n_common;
      common_term += std::abs(static_cast<double>(ra) -
                              static_cast<double>(it->second));
    } else {
      missing_term += static_cast<double>(ra);
    }
  }
  for (const auto& [item, rb] : rank_b) {
    if (!rank_a.contains(item)) missing_term += static_cast<double>(rb);
  }
  return 2.0 * static_cast<double>(k - n_common) *
             static_cast<double>(k + 1) +
         common_term - missing_term;
}

double SpearmanFootRuleNormalized(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  const size_t k = std::max(a.size(), b.size());
  if (k == 0) return 0.0;
  // Maximum distance is attained by disjoint lists:
  //   2k(k+1) − Σ_{1..|a|} − Σ_{1..|b|}.
  auto rank_sum = [](size_t n) {
    return static_cast<double>(n) * static_cast<double>(n + 1) / 2.0;
  };
  double max_distance = 2.0 * static_cast<double>(k) *
                            static_cast<double>(k + 1) -
                        rank_sum(a.size()) - rank_sum(b.size());
  if (max_distance <= 0.0) return 0.0;
  return SpearmanFootRule(a, b) / max_distance;
}

double IntersectionRatio(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b) {
  const size_t k = std::max(a.size(), b.size());
  if (k == 0) return 0.0;
  std::unordered_set<uint64_t> sa(a.begin(), a.end());
  size_t common = 0;
  for (uint64_t x : b) {
    if (sa.contains(x)) ++common;
  }
  return static_cast<double>(common) / static_cast<double>(k);
}

double UnreachableFraction(const std::vector<uint64_t>& universe,
                           const std::vector<uint64_t>& reachable) {
  if (universe.empty()) return 0.0;
  std::unordered_set<uint64_t> r(reachable.begin(), reachable.end());
  size_t missed = 0;
  for (uint64_t x : universe) {
    if (!r.contains(x)) ++missed;
  }
  return static_cast<double>(missed) / static_cast<double>(universe.size());
}

}  // namespace s3::eval
