#include "eval/service_stats.h"

#include <algorithm>
#include <cstdio>

#include "common/stats.h"

namespace s3::eval {

void LatencyRecorder::Add(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.size() < window_capacity_) {
    samples_.push_back(seconds);
  } else {
    samples_[next_slot_] = seconds;
    next_slot_ = (next_slot_ + 1) % window_capacity_;
  }
  ++total_count_;
}

size_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_count_;
}

LatencySnapshot LatencyRecorder::TakeSnapshot(double elapsed_seconds) const {
  std::vector<double> samples;
  size_t total;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples = samples_;  // window order is irrelevant for quantiles
    total = total_count_;
  }
  LatencySnapshot out;
  out.count = total;
  out.elapsed_seconds = elapsed_seconds;
  if (samples.empty()) return out;
  if (elapsed_seconds > 0.0) {
    out.qps = static_cast<double>(total) / elapsed_seconds;
  }
  constexpr double kMs = 1e3;
  out.mean_ms = Mean(samples) * kMs;
  out.p50_ms = Quantile(samples, 0.50) * kMs;
  out.p90_ms = Quantile(samples, 0.90) * kMs;
  out.p99_ms = Quantile(samples, 0.99) * kMs;
  out.max_ms = *std::max_element(samples.begin(), samples.end()) * kMs;
  return out;
}

void LatencyRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  next_slot_ = 0;
  total_count_ = 0;
}

std::string FormatSnapshot(const LatencySnapshot& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu qps=%.1f p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms",
                s.count, s.qps, s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms);
  return buf;
}

size_t CertifiedEpsilonBucket(double eps) {
  // NaN (never produced by the engine, but callers may synthesize) is
  // "uncertified" — the overflow bucket, like infinity.
  if (!(eps <= 1e-1)) return 5;
  if (eps <= 1e-9) return 0;
  if (eps <= 1e-6) return 1;
  if (eps <= 1e-3) return 2;
  if (eps <= 1e-2) return 3;
  return 4;
}

const char* CertifiedEpsilonBucketLabel(size_t bucket) {
  static const char* kLabels[ServiceCounters::kEpsBuckets] = {
      "<=1e-9", "<=1e-6", "<=1e-3", "<=1e-2", "<=1e-1", ">1e-1"};
  return bucket < ServiceCounters::kEpsBuckets ? kLabels[bucket] : "?";
}

std::string FormatCounters(const ServiceCounters& c) {
  char buf[448];
  int n = 0;
  if (c.cache_hits + c.cache_misses == 0) {
    n = std::snprintf(buf, sizeof(buf), "rejected=%llu cache=off",
                      static_cast<unsigned long long>(c.rejected_queue_full));
  } else {
    n = std::snprintf(buf, sizeof(buf),
                      "rejected=%llu cache=%llu/%llu (%.1f%% hit)",
                      static_cast<unsigned long long>(c.rejected_queue_full),
                      static_cast<unsigned long long>(c.cache_hits),
                      static_cast<unsigned long long>(c.cache_hits +
                                                      c.cache_misses),
                      c.CacheHitRate() * 100.0);
  }
  auto append = [&](const char* fmt, auto... args) {
    if (n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      const int wrote = std::snprintf(buf + n, sizeof(buf) - n, fmt, args...);
      if (wrote > 0) n += wrote;
    }
  };
  if (c.batches_executed > 0) {
    append(" batched=%llu/%llu (%.1f avg)",
           static_cast<unsigned long long>(c.batched_queries),
           static_cast<unsigned long long>(c.batches_executed),
           c.MeanBatchWidth());
  }
  if (c.anytime_queries > 0 || c.deadline_exceeded > 0) {
    append(" anytime=%llu deadline_exceeded=%llu",
           static_cast<unsigned long long>(c.anytime_queries),
           static_cast<unsigned long long>(c.deadline_exceeded));
    for (size_t b = 0; b < ServiceCounters::kEpsBuckets; ++b) {
      if (c.certified_eps_hist[b] == 0) continue;
      append(" eps[%s]=%llu", CertifiedEpsilonBucketLabel(b),
             static_cast<unsigned long long>(c.certified_eps_hist[b]));
    }
  }
  return buf;
}

}  // namespace s3::eval
