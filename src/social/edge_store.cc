#include "social/edge_store.h"

#include <cassert>

namespace s3::social {

namespace {
const std::vector<uint32_t> kNoEdges;
}  // namespace

const char* EdgeLabelName(EdgeLabel label) {
  switch (label) {
    case EdgeLabel::kSocial:
      return "S3:social";
    case EdgeLabel::kPostedBy:
      return "S3:postedBy";
    case EdgeLabel::kPostedByInv:
      return "S3:postedBy-";
    case EdgeLabel::kCommentsOn:
      return "S3:commentsOn";
    case EdgeLabel::kCommentsOnInv:
      return "S3:commentsOn-";
    case EdgeLabel::kHasSubject:
      return "S3:hasSubject";
    case EdgeLabel::kHasSubjectInv:
      return "S3:hasSubject-";
    case EdgeLabel::kHasAuthor:
      return "S3:hasAuthor";
    case EdgeLabel::kHasAuthorInv:
      return "S3:hasAuthor-";
  }
  return "?";
}

EdgeLabel InverseLabel(EdgeLabel label) {
  switch (label) {
    case EdgeLabel::kSocial:
      return EdgeLabel::kSocial;
    case EdgeLabel::kPostedBy:
      return EdgeLabel::kPostedByInv;
    case EdgeLabel::kPostedByInv:
      return EdgeLabel::kPostedBy;
    case EdgeLabel::kCommentsOn:
      return EdgeLabel::kCommentsOnInv;
    case EdgeLabel::kCommentsOnInv:
      return EdgeLabel::kCommentsOn;
    case EdgeLabel::kHasSubject:
      return EdgeLabel::kHasSubjectInv;
    case EdgeLabel::kHasSubjectInv:
      return EdgeLabel::kHasSubject;
    case EdgeLabel::kHasAuthor:
      return EdgeLabel::kHasAuthorInv;
    case EdgeLabel::kHasAuthorInv:
      return EdgeLabel::kHasAuthor;
  }
  return label;
}

void EdgeStore::Add(EntityId source, EntityId target, EdgeLabel label,
                    double weight) {
  assert(weight > 0.0 && weight <= 1.0);
  uint32_t idx = static_cast<uint32_t>(edges_.size());
  edges_.push_back(NetEdge{source, target, label, weight});
  out_[source].push_back(idx);
  out_weight_[source] += weight;
}

void EdgeStore::AddWithInverse(EntityId source, EntityId target,
                               EdgeLabel label, double weight) {
  Add(source, target, label, weight);
  Add(target, source, InverseLabel(label), weight);
}

const std::vector<uint32_t>& EdgeStore::OutEdges(EntityId e) const {
  auto it = out_.find(e);
  return it == out_.end() ? kNoEdges : it->second;
}

double EdgeStore::OutWeight(EntityId e) const {
  auto it = out_weight_.find(e);
  return it == out_weight_.end() ? 0.0 : it->second;
}

size_t EdgeStore::CountLabel(EdgeLabel label) const {
  size_t n = 0;
  for (const NetEdge& e : edges_) {
    if (e.label == label) ++n;
  }
  return n;
}

}  // namespace s3::social
