#include "social/edge_store.h"

#include <cassert>

#include "common/cow.h"

namespace s3::social {

namespace {
const std::vector<uint32_t> kNoEdges;
}  // namespace

const char* EdgeLabelName(EdgeLabel label) {
  switch (label) {
    case EdgeLabel::kSocial:
      return "S3:social";
    case EdgeLabel::kPostedBy:
      return "S3:postedBy";
    case EdgeLabel::kPostedByInv:
      return "S3:postedBy-";
    case EdgeLabel::kCommentsOn:
      return "S3:commentsOn";
    case EdgeLabel::kCommentsOnInv:
      return "S3:commentsOn-";
    case EdgeLabel::kHasSubject:
      return "S3:hasSubject";
    case EdgeLabel::kHasSubjectInv:
      return "S3:hasSubject-";
    case EdgeLabel::kHasAuthor:
      return "S3:hasAuthor";
    case EdgeLabel::kHasAuthorInv:
      return "S3:hasAuthor-";
  }
  return "?";
}

EdgeLabel InverseLabel(EdgeLabel label) {
  switch (label) {
    case EdgeLabel::kSocial:
      return EdgeLabel::kSocial;
    case EdgeLabel::kPostedBy:
      return EdgeLabel::kPostedByInv;
    case EdgeLabel::kPostedByInv:
      return EdgeLabel::kPostedBy;
    case EdgeLabel::kCommentsOn:
      return EdgeLabel::kCommentsOnInv;
    case EdgeLabel::kCommentsOnInv:
      return EdgeLabel::kCommentsOn;
    case EdgeLabel::kHasSubject:
      return EdgeLabel::kHasSubjectInv;
    case EdgeLabel::kHasSubjectInv:
      return EdgeLabel::kHasSubject;
    case EdgeLabel::kHasAuthor:
      return EdgeLabel::kHasAuthorInv;
    case EdgeLabel::kHasAuthorInv:
      return EdgeLabel::kHasAuthor;
  }
  return label;
}

void EdgeStore::Add(EntityId source, EntityId target, EdgeLabel label,
                    double weight) {
  assert(weight > 0.0 && weight <= 1.0);
  // Tail chunk: create a fresh one when full or absent; clone a
  // partially filled one another generation still shares. Chunks are
  // reserved at kChunkSize so appends never reallocate — references
  // into the log stay valid for the chunk's lifetime.
  if (chunks_.empty() || chunks_.back()->size() == kChunkSize) {
    chunks_.push_back(std::make_shared<Chunk>());
    chunks_.back()->reserve(kChunkSize);
  } else if (chunks_.back().use_count() > 1) {
    auto clone = std::make_shared<Chunk>();
    clone->reserve(kChunkSize);
    clone->insert(clone->end(), chunks_.back()->begin(),
                  chunks_.back()->end());
    chunks_.back() = std::move(clone);
  }
  uint32_t idx = static_cast<uint32_t>(n_edges_);
  chunks_.back()->push_back(NetEdge{source, target, label, weight});
  ++n_edges_;

  // Copy-on-write: only the rows a new generation's edges touch are
  // ever cloned.
  AdjRow& row = MutableCow(out_[source]);
  row.edges.push_back(idx);
  row.weight_sum += weight;
}

void EdgeStore::AddWithInverse(EntityId source, EntityId target,
                               EdgeLabel label, double weight) {
  Add(source, target, label, weight);
  Add(target, source, InverseLabel(label), weight);
}

const std::vector<uint32_t>& EdgeStore::OutEdges(EntityId e) const {
  auto it = out_.find(e);
  return it == out_.end() ? kNoEdges : it->second->edges;
}

double EdgeStore::OutWeight(EntityId e) const {
  auto it = out_.find(e);
  return it == out_.end() ? 0.0 : it->second->weight_sum;
}

size_t EdgeStore::CountLabel(EdgeLabel label) const {
  size_t n = 0;
  for (const NetEdge& e : edges()) {
    if (e.label == label) ++n;
  }
  return n;
}

bool EdgeStore::SharesAdjacencyRow(const EdgeStore& other,
                                   EntityId e) const {
  auto it = out_.find(e);
  auto jt = other.out_.find(e);
  if (it == out_.end() || jt == other.out_.end()) return false;
  return it->second == jt->second;
}

}  // namespace s3::social
