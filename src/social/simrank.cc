#include "social/simrank.h"

namespace s3::social {

void SimRank::Compute(const EdgeStore& edges, uint32_t n_users,
                      const SimRankOptions& options) {
  n_ = n_users;
  const size_t total = static_cast<size_t>(n_) * n_;
  scores_.assign(total, 0.0);
  if (n_ == 0) return;

  // In-neighbor lists over social edges.
  std::vector<std::vector<uint32_t>> in(n_users);
  for (const NetEdge& e : edges.edges()) {
    if (e.label != EdgeLabel::kSocial) continue;
    if (e.source.index() < n_users && e.target.index() < n_users) {
      in[e.target.index()].push_back(e.source.index());
    }
  }

  std::vector<double> prev(total, 0.0);
  for (uint32_t a = 0; a < n_; ++a) {
    prev[static_cast<size_t>(a) * n_ + a] = 1.0;
  }

  for (size_t iter = 0; iter < options.iterations; ++iter) {
    for (uint32_t a = 0; a < n_; ++a) {
      scores_[static_cast<size_t>(a) * n_ + a] = 1.0;
      for (uint32_t b = a + 1; b < n_; ++b) {
        double sum = 0.0;
        if (!in[a].empty() && !in[b].empty()) {
          for (uint32_t i : in[a]) {
            const double* row = prev.data() + static_cast<size_t>(i) * n_;
            for (uint32_t j : in[b]) {
              sum += row[j];
            }
          }
          sum *= options.decay /
                 (static_cast<double>(in[a].size()) * in[b].size());
        }
        scores_[static_cast<size_t>(a) * n_ + b] = sum;
        scores_[static_cast<size_t>(b) * n_ + a] = sum;
      }
    }
    prev = scores_;
  }
}

}  // namespace s3::social
