#include "social/transition_matrix.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <unordered_map>

#include "social/propagate_kernels.h"
#if defined(S3_SIMD_AVX2)
#include "social/propagate_avx2.h"
#endif

namespace s3::social {

namespace {

// Runtime kernel dispatch: the AVX2 TU (compiled with -mavx2, no FMA
// contraction, no fast-math) is bit-for-bit equal to the scalar
// build — only the element-wise lane dimension vectorizes — so the
// dispatch is purely a throughput decision.
#if defined(S3_SIMD_AVX2)
const bool kHaveAvx2 = __builtin_cpu_supports("avx2");
#endif

inline void ScatterRowD(size_t lanes, const uint32_t* cols,
                        const double* vals, size_t n, const double* mass,
                        double* out) {
#if defined(S3_SIMD_AVX2)
  if (kHaveAvx2) return avx2::ScatterRow(lanes, cols, vals, n, mass, out);
#endif
  pk::ScatterRow(lanes, cols, vals, n, mass, out);
}

inline void GatherRowD(size_t lanes, const uint32_t* cols, const double* vals,
                       size_t n, const double* in, double* acc) {
#if defined(S3_SIMD_AVX2)
  if (kHaveAvx2) return avx2::GatherRow(lanes, cols, vals, n, in, acc);
#endif
  pk::GatherRow(lanes, cols, vals, n, in, acc);
}

}  // namespace

void Frontier::Clear() {
  for (uint32_t row : nonzero) values[row] = 0.0;
  nonzero.clear();
}

void Frontier::Init(size_t total_rows) {
  values.assign(total_rows, 0.0);
  nonzero.clear();
}

void Frontier::Set(uint32_t row, double v) {
  if (values[row] == 0.0 && v != 0.0) nonzero.push_back(row);
  values[row] = v;
}

double Frontier::Sum() const {
  double s = 0.0;
  for (uint32_t row : nonzero) s += values[row];
  return s;
}

void BatchFrontier::Init(size_t total_rows, size_t n_lanes) {
  assert(n_lanes >= 1 && n_lanes <= kMaxFrontierLanes);
  lanes = n_lanes;
  values.assign(total_rows * n_lanes, 0.0);
  nonzero.clear();
  lane_mass.assign(n_lanes, 0);
  touch_epoch.assign(total_rows, 0);
  epoch = 0;
}

void BatchFrontier::Clear() {
  for (uint32_t row : nonzero) {
    double* p = &values[static_cast<size_t>(row) * lanes];
    for (size_t l = 0; l < lanes; ++l) p[l] = 0.0;
  }
  nonzero.clear();
  std::fill(lane_mass.begin(), lane_mass.end(), 0);
}

void BatchFrontier::Set(uint32_t row, size_t lane, double v) {
  double* p = &values[static_cast<size_t>(row) * lanes];
  bool had = false;
  for (size_t l = 0; l < lanes; ++l) had = had || p[l] != 0.0;
  if (!had && v != 0.0) nonzero.push_back(row);
  p[lane] = v;
  if (v != 0.0) lane_mass[lane] = 1;
}

void BatchFrontier::ZeroLane(size_t lane) {
  for (uint32_t row : nonzero) {
    values[static_cast<size_t>(row) * lanes + lane] = 0.0;
  }
  lane_mass[lane] = 0;
}

void TransitionMatrix::AppendComputedRow(
    uint32_t row, const EntityLayout& layout, const EdgeStore& edges,
    const doc::DocumentStore& docs, CsrBuild& b,
    std::unordered_map<uint32_t, double>& row_acc,
    std::vector<std::pair<uint32_t, double>>& sorted_row) {
  row_acc.clear();
  auto accumulate_entity = [&](EntityId x) {
    for (uint32_t eidx : edges.OutEdges(x)) {
      const NetEdge& e = edges.edge(eidx);
      row_acc[layout.Row(e.target)] += e.weight;
    }
  };
  EntityId n = layout.Entity(row);
  double d = edges.OutWeight(n);
  accumulate_entity(n);
  if (n.kind() == EntityKind::kFragment) {
    // A path entering a fragment may exit from any vertical neighbor.
    for (doc::NodeId v : docs.VerticalNeighbors(n.index())) {
      EntityId ve = EntityId::Fragment(v);
      d += edges.OutWeight(ve);
      accumulate_entity(ve);
    }
  }
  b.denom[row] = d;
  sorted_row.assign(row_acc.begin(), row_acc.end());
  std::sort(sorted_row.begin(), sorted_row.end());
  for (auto& [col, w] : sorted_row) {
    b.cols.push_back(col);
    b.vals.push_back(w / d);
  }
  b.row_ptr[row + 1] = b.cols.size();
}

void TransitionMatrix::BuildTranspose() {
  const size_t total = rows();
  t_row_ptr_.assign(total + 1, 0);
  for (uint32_t col : cols_) ++t_row_ptr_[col + 1];
  for (uint32_t r = 0; r < total; ++r) t_row_ptr_[r + 1] += t_row_ptr_[r];
  t_cols_.resize(cols_.size());
  t_vals_.resize(vals_.size());
  std::vector<uint64_t> cursor(t_row_ptr_.begin(), t_row_ptr_.end() - 1);
  for (uint32_t row = 0; row < total; ++row) {
    for (uint64_t i = row_ptr_[row]; i < row_ptr_[row + 1]; ++i) {
      uint64_t pos = cursor[cols_[i]]++;
      t_cols_[pos] = row;
      t_vals_[pos] = vals_[i];
    }
  }
}

Status TransitionMatrix::Adopt(StorageSpan<uint64_t> row_ptr,
                               StorageSpan<uint32_t> cols,
                               StorageSpan<double> vals,
                               StorageSpan<double> denom, size_t n_rows) {
  auto bad = [](const std::string& why) {
    return Status::InvalidArgument("transition matrix: " + why);
  };
  if (row_ptr.size() != n_rows + 1 || denom.size() != n_rows) {
    return bad("row count mismatch");
  }
  if (row_ptr[0] != 0 || row_ptr.back() != cols.size() ||
      cols.size() != vals.size()) {
    return bad("CSR extent mismatch");
  }
  for (size_t r = 0; r < n_rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) return bad("row_ptr not monotone");
    for (uint64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      if (cols[i] >= n_rows) return bad("column out of range");
      if (i > row_ptr[r] && cols[i] <= cols[i - 1]) {
        return bad("row columns not strictly ascending");
      }
    }
  }
  row_ptr_ = std::move(row_ptr);
  cols_ = std::move(cols);
  vals_ = std::move(vals);
  denom_ = std::move(denom);
  BuildTranspose();
  return Status::OK();
}

void TransitionMatrix::Build(const EntityLayout& layout,
                             const EdgeStore& edges,
                             const doc::DocumentStore& docs) {
  const uint32_t total = layout.total();
  CsrBuild b;
  b.row_ptr.assign(total + 1, 0);
  b.denom.assign(total, 0.0);

  // Per-row accumulation buffer: column -> weight sum (unnormalized).
  std::unordered_map<uint32_t, double> row_acc;
  std::vector<std::pair<uint32_t, double>> sorted_row;

  for (uint32_t row = 0; row < total; ++row) {
    AppendComputedRow(row, layout, edges, docs, b, row_acc, sorted_row);
  }
  row_ptr_ = std::move(b.row_ptr);
  cols_ = std::move(b.cols);
  vals_ = std::move(b.vals);
  denom_ = std::move(b.denom);
  BuildTranspose();
}

void TransitionMatrix::IncrementalUpdate(const EntityLayout& new_layout,
                                         const EdgeStore& edges,
                                         const doc::DocumentStore& docs,
                                         const std::vector<char>& touched,
                                         uint32_t old_tag_base,
                                         uint32_t n_new_fragments) {
  const uint32_t total = new_layout.total();
  const uint32_t old_total = static_cast<uint32_t>(rows());
  const uint32_t new_frag_end = old_tag_base + n_new_fragments;
  assert(touched.size() == total);

  // The pre-delta CSR (possibly view-backed on a mapped base) is read
  // in place while the successor arrays accumulate in owned scratch;
  // the swap at the end releases it — or, for a view, just this
  // matrix's pin on the mapping.
  const StorageSpan<uint64_t> old_row_ptr = std::move(row_ptr_);
  const StorageSpan<uint32_t> old_cols = std::move(cols_);
  const StorageSpan<double> old_vals = std::move(vals_);
  const StorageSpan<double> old_denom = std::move(denom_);

  CsrBuild b;
  b.row_ptr.assign(total + 1, 0);
  b.denom.assign(total, 0.0);
  b.cols.reserve(old_cols.size());
  b.vals.reserve(old_vals.size());

  std::unordered_map<uint32_t, double> row_acc;
  std::vector<std::pair<uint32_t, double>> sorted_row;

  for (uint32_t row = 0; row < total; ++row) {
    // New-layout row -> pre-delta row: rows below the old tag base are
    // unchanged, the next n_new_fragments rows are new fragments, and
    // the rest are (old tags shifted up) followed by new tags.
    uint32_t old_row = UINT32_MAX;
    if (row < old_tag_base) {
      old_row = row;
    } else if (row >= new_frag_end && row - n_new_fragments < old_total) {
      old_row = row - n_new_fragments;
    }
    if (old_row != UINT32_MAX && !touched[row]) {
      // Splice: same normalized values, columns remapped for the tag
      // shift (the remap is monotone, so sortedness is preserved).
      b.denom[row] = old_denom[old_row];
      for (uint64_t i = old_row_ptr[old_row]; i < old_row_ptr[old_row + 1];
           ++i) {
        const uint32_t c = old_cols[i];
        b.cols.push_back(c < old_tag_base ? c : c + n_new_fragments);
        b.vals.push_back(old_vals[i]);
      }
      b.row_ptr[row + 1] = b.cols.size();
    } else {
      AppendComputedRow(row, new_layout, edges, docs, b, row_acc,
                        sorted_row);
    }
  }
  row_ptr_ = std::move(b.row_ptr);
  cols_ = std::move(b.cols);
  vals_ = std::move(b.vals);
  denom_ = std::move(b.denom);
  BuildTranspose();
}

void TransitionMatrix::PropagateParallel(const Frontier& in, Frontier& out,
                                         ThreadPool& pool) const {
  assert(out.values.size() == in.values.size());
  out.Clear();
  const size_t total = rows();
  const size_t n_chunks = (pool.WorkerCount() + 1) * 4;
  const size_t chunk = (total + n_chunks - 1) / n_chunks;
  std::vector<std::vector<uint32_t>> nz_per_chunk(n_chunks);
  pool.ParallelFor(n_chunks, [&](size_t c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(total, begin + chunk);
    auto& nz = nz_per_chunk[c];
    for (size_t row = begin; row < end; ++row) {
      double sum;
      const uint64_t rb = t_row_ptr_[row];
      GatherRowD(1, t_cols_.data() + rb, t_vals_.data() + rb,
                 t_row_ptr_[row + 1] - rb, in.values.data(), &sum);
      if (sum != 0.0) {
        out.values[row] = sum;
        nz.push_back(static_cast<uint32_t>(row));
      }
    }
  });
  for (auto& nz : nz_per_chunk) {
    out.nonzero.insert(out.nonzero.end(), nz.begin(), nz.end());
  }
}

void TransitionMatrix::Propagate(const Frontier& in, Frontier& out) const {
  assert(out.values.size() == in.values.size());
  out.Clear();
  for (uint32_t row : in.nonzero) {
    const double mass = in.values[row];
    if (mass == 0.0) continue;
    for (uint64_t i = row_ptr_[row]; i < row_ptr_[row + 1]; ++i) {
      const uint32_t col = cols_[i];
      if (out.values[col] == 0.0) out.nonzero.push_back(col);
      out.values[col] += mass * vals_[i];
    }
  }
}

void TransitionMatrix::PropagateAdaptive(const Frontier& in, Frontier& out,
                                         ThreadPool* pool) const {
  // Pull reads all nnz transpose entries sequentially; push scatters
  // into `touched` of them. The crossover sits where the scatter
  // traffic approaches the full sequential sweep. The measurement
  // stops as soon as the verdict is known.
  const uint64_t touched_cut = nonzeros() / 4;
  uint64_t touched = 0;
  for (uint32_t row : in.nonzero) {
    touched += row_ptr_[row + 1] - row_ptr_[row];
    if (touched >= touched_cut) break;
  }
  const bool dense = touched >= touched_cut ||
                     in.nonzero.size() * 4 >= rows();
  if (dense && pool != nullptr) {
    // Chunks are contiguous, ascending row ranges, so the concatenated
    // nonzero list comes out sorted.
    PropagateParallel(in, out, *pool);
    return;
  }
  if (dense) {
    out.Clear();
    const size_t total = rows();
    for (size_t row = 0; row < total; ++row) {
      double sum;
      const uint64_t rb = t_row_ptr_[row];
      GatherRowD(1, t_cols_.data() + rb, t_vals_.data() + rb,
                 t_row_ptr_[row + 1] - rb, in.values.data(), &sum);
      if (sum != 0.0) {
        out.values[row] = sum;
        out.nonzero.push_back(static_cast<uint32_t>(row));
      }
    }
    return;
  }
  Propagate(in, out);
  std::sort(out.nonzero.begin(), out.nonzero.end());
}

void TransitionMatrix::PropagateBatchPush(const BatchFrontier& in,
                                          BatchFrontier& out) const {
  const size_t L = in.lanes;
  out.Clear();
  if (out.touch_epoch.size() != rows()) {
    out.touch_epoch.assign(rows(), 0);
    out.epoch = 0;
  }
  if (++out.epoch == 0) {  // epoch wrap: reset the marks once
    std::fill(out.touch_epoch.begin(), out.touch_epoch.end(), 0);
    out.epoch = 1;
  }
  const uint32_t e = out.epoch;
  std::vector<uint32_t>& touched = out.nonzero;
  for (uint32_t row : in.nonzero) {
    const double* mass = &in.values[static_cast<size_t>(row) * L];
    bool any = false;
    for (size_t l = 0; l < L && !any; ++l) any = mass[l] != 0.0;
    if (!any) continue;  // e.g. every lane holding this row dropped out
    const uint64_t begin = row_ptr_[row], end = row_ptr_[row + 1];
    for (uint64_t i = begin; i < end; ++i) {
      const uint32_t col = cols_[i];
      if (out.touch_epoch[col] != e) {
        out.touch_epoch[col] = e;
        touched.push_back(col);
      }
    }
    ScatterRowD(L, cols_.data() + begin, vals_.data() + begin, end - begin,
                mass, out.values.data());
  }
  std::sort(touched.begin(), touched.end());
  // Keep only columns with some surviving lane value; flag lane
  // survival while at it.
  size_t w = 0;
  for (uint32_t col : touched) {
    const double* p = &out.values[static_cast<size_t>(col) * L];
    bool any = false;
    for (size_t l = 0; l < L; ++l) {
      if (p[l] != 0.0) {
        any = true;
        out.lane_mass[l] = 1;
      }
    }
    if (any) touched[w++] = col;
  }
  touched.resize(w);
}

void TransitionMatrix::PropagateBatchPull(
    const BatchFrontier& in, BatchFrontier& out, ThreadPool* pool,
    const std::vector<uint32_t>* pull_rows) const {
  const size_t L = in.lanes;
  out.Clear();
  // When a restriction list is given, only those rows are gathered —
  // the caller guarantees every skipped row gathers exactly 0.0, so
  // leaving it zeroed (Clear above) is what the full sweep would have
  // stored. The list is ascending, so nonzero stays sorted.
  const size_t total = pull_rows != nullptr ? pull_rows->size() : rows();
  auto row_at = [&](size_t i) {
    return pull_rows != nullptr ? (*pull_rows)[i]
                                : static_cast<uint32_t>(i);
  };
  const double* inv = in.values.data();
  if (pool == nullptr) {
    double acc[kMaxFrontierLanes];
    for (size_t i = 0; i < total; ++i) {
      const uint32_t row = row_at(i);
      const uint64_t begin = t_row_ptr_[row], end = t_row_ptr_[row + 1];
      GatherRowD(L, t_cols_.data() + begin, t_vals_.data() + begin,
                 end - begin, inv, acc);
      bool any = false;
      for (size_t l = 0; l < L; ++l) {
        if (acc[l] != 0.0) {
          any = true;
          out.lane_mass[l] = 1;
        }
      }
      if (any) {
        std::copy(acc, acc + L, &out.values[static_cast<size_t>(row) * L]);
        out.nonzero.push_back(row);
      }
    }
    return;
  }
  // Chunks are contiguous ascending row ranges (as in
  // PropagateParallel), so the concatenated nonzero list stays sorted.
  const size_t n_chunks = (pool->WorkerCount() + 1) * 4;
  const size_t chunk = (total + n_chunks - 1) / n_chunks;
  std::vector<std::vector<uint32_t>> nz_per_chunk(n_chunks);
  std::vector<std::array<uint8_t, kMaxFrontierLanes>> mass_per_chunk(
      n_chunks);
  pool->ParallelFor(n_chunks, [&](size_t c) {
    const size_t begin_i = c * chunk;
    const size_t end_i = std::min(total, begin_i + chunk);
    auto& nz = nz_per_chunk[c];
    auto& lm = mass_per_chunk[c];
    lm.fill(0);
    double acc[kMaxFrontierLanes];
    for (size_t i = begin_i; i < end_i; ++i) {
      const uint32_t row = row_at(i);
      const uint64_t begin = t_row_ptr_[row], end = t_row_ptr_[row + 1];
      GatherRowD(L, t_cols_.data() + begin, t_vals_.data() + begin,
                 end - begin, inv, acc);
      bool any = false;
      for (size_t l = 0; l < L; ++l) {
        if (acc[l] != 0.0) {
          any = true;
          lm[l] = 1;
        }
      }
      if (any) {
        std::copy(acc, acc + L, &out.values[static_cast<size_t>(row) * L]);
        nz.push_back(row);
      }
    }
  });
  for (size_t c = 0; c < n_chunks; ++c) {
    out.nonzero.insert(out.nonzero.end(), nz_per_chunk[c].begin(),
                       nz_per_chunk[c].end());
    for (size_t l = 0; l < L; ++l) {
      if (mass_per_chunk[c][l]) out.lane_mass[l] = 1;
    }
  }
}

void TransitionMatrix::PropagateBatchAdaptive(
    const BatchFrontier& in, BatchFrontier& out, ThreadPool* pool,
    const std::vector<uint32_t>* pull_rows, bool* used_pull) const {
  // Same crossover heuristic as PropagateAdaptive, measured on the
  // union support. The verdict may differ from what any single lane
  // would have chosen alone — harmless, because push and pull are
  // bitwise-identical per lane (ascending source-row accumulation both
  // ways). A pull restriction shrinks the pull side of the crossover
  // proportionally: the gather only sweeps the restricted rows'
  // transpose entries.
  const size_t pull_span = pull_rows != nullptr ? pull_rows->size() : rows();
  uint64_t touched_cut = nonzeros() / 4;
  if (pull_rows != nullptr && rows() > 0) {
    touched_cut = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(touched_cut) *
                                 static_cast<double>(pull_span) /
                                 static_cast<double>(rows())));
  }
  uint64_t touched = 0;
  for (uint32_t row : in.nonzero) {
    touched += row_ptr_[row + 1] - row_ptr_[row];
    if (touched >= touched_cut) break;
  }
  const bool dense = touched >= touched_cut ||
                     in.nonzero.size() * 4 >= pull_span;
  if (used_pull != nullptr) *used_pull = dense;
  if (dense) {
    PropagateBatchPull(in, out, pool, pull_rows);
  } else {
    PropagateBatchPush(in, out);
  }
}

double TransitionMatrix::RowSum(uint32_t row) const {
  double s = 0.0;
  for (uint64_t i = row_ptr_[row]; i < row_ptr_[row + 1]; ++i) s += vals_[i];
  return s;
}

std::vector<std::pair<uint32_t, double>> TransitionMatrix::Row(
    uint32_t row) const {
  std::vector<std::pair<uint32_t, double>> out;
  for (uint64_t i = row_ptr_[row]; i < row_ptr_[row + 1]; ++i) {
    out.emplace_back(cols_[i], vals_[i]);
  }
  return out;
}

}  // namespace s3::social
