#include "social/entity.h"

namespace s3::social {

std::string EntityId::ToString() const {
  if (!valid()) return "entity(invalid)";
  const char* kind_name = "?";
  switch (kind()) {
    case EntityKind::kUser:
      kind_name = "user";
      break;
    case EntityKind::kFragment:
      kind_name = "frag";
      break;
    case EntityKind::kTag:
      kind_name = "tag";
      break;
  }
  return std::string(kind_name) + ":" + std::to_string(index());
}

}  // namespace s3::social
