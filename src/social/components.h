// Connected components of documents and tags under
// S3:partOf ∪ S3:commentsOn± ∪ S3:hasSubject± edges (paper §5.2).
//
// Connections (con tuples, §3.2) propagate only along these edges, so a
// fragment can match a query keyword iff its component matches it. The
// component partition is the pruning structure behind GetDocuments.
//
// The index keeps its union-find forest after Build so the live-update
// pipeline can extend the partition incrementally: BuildIncremental
// remaps the forest into the post-delta row space, unions only the
// delta's linking edges and the new documents' partOf clusters, and
// re-assigns component ids with the same row scan a from-scratch Build
// would run — the resulting partition (and id assignment) is identical
// to rebuilding, at O(rows + delta edges) instead of O(rows + all
// edges).
#ifndef S3_SOCIAL_COMPONENTS_H_
#define S3_SOCIAL_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/storage_span.h"
#include "doc/document_store.h"
#include "social/edge_store.h"
#include "social/entity.h"

namespace s3::social {

using ComponentId = uint32_t;
inline constexpr ComponentId kInvalidComponent = UINT32_MAX;

class ComponentIndex {
 public:
  // Computes the partition. Only fragment and tag entities belong to
  // components; users map to kInvalidComponent.
  void Build(const EntityLayout& layout, const EdgeStore& edges,
             const doc::DocumentStore& docs);

  // Live-update path: `this` must hold the pre-delta partition (the
  // copied base index). Extends it to the post-delta populations:
  // documents with id >= first_new_doc contribute partOf unions, edge
  // log entries >= first_new_edge contribute commentsOn/hasSubject
  // unions (endpoints may be pre-delta entities — old components can
  // merge). `old_tag_base`/`n_new_fragments` describe the tag-row
  // shift, as in TransitionMatrix::IncrementalUpdate.
  void BuildIncremental(const EntityLayout& new_layout,
                        const EdgeStore& edges,
                        const doc::DocumentStore& docs,
                        doc::DocId first_new_doc, uint32_t first_new_edge,
                        uint32_t old_tag_base, uint32_t n_new_fragments);

  ComponentId OfRow(uint32_t row) const { return comp_of_row_[row]; }
  ComponentId Of(EntityId e) const;

  // Members (entity rows) of one component.
  const std::vector<uint32_t>& Members(ComponentId c) const {
    return members_[c];
  }

  size_t ComponentCount() const { return members_.size(); }

  // ---- snapshot (de)serialization hooks --------------------------------

  // The persisted union-find forest is the canonical serialized form:
  // comp_of_row_/members_ are re-derived from it on adoption by the
  // same ordered row scan Build runs, so the component-id assignment of
  // a reloaded snapshot matches the saved instance exactly (path
  // compression changes parent entries but never roots). May be
  // view-backed after a v2 mmap attach; nothing mutates it in place —
  // path compression happens only inside Build/BuildIncremental on
  // owned scratch before adoption.
  const StorageSpan<uint32_t>& forest() const { return uf_parent_; }

  // Binary-load path: adopts a deserialized forest (size and parent
  // range validated, user rows must be singletons) and assigns
  // component ids. `layout` must outlive this index.
  Status AdoptForest(const EntityLayout& layout,
                     StorageSpan<uint32_t> forest);

 private:
  // Re-derives comp_of_row_ / members_ from the union-find forest by
  // scanning rows in order (the id-assignment convention shared by the
  // full and incremental builds). Read-only over uf_parent_: roots are
  // resolved through a memoized side table instead of path compression,
  // so a view-backed forest is never written through.
  void AssignComponents(const EntityLayout& layout);

  const EntityLayout* layout_ = nullptr;
  std::vector<ComponentId> comp_of_row_;
  std::vector<std::vector<uint32_t>> members_;
  // Union-find forest over entity rows, kept after Build for
  // incremental extension.
  StorageSpan<uint32_t> uf_parent_;
};

}  // namespace s3::social

#endif  // S3_SOCIAL_COMPONENTS_H_
