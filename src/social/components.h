// Connected components of documents and tags under
// S3:partOf ∪ S3:commentsOn± ∪ S3:hasSubject± edges (paper §5.2).
//
// Connections (con tuples, §3.2) propagate only along these edges, so a
// fragment can match a query keyword iff its component matches it. The
// component partition is the pruning structure behind GetDocuments.
#ifndef S3_SOCIAL_COMPONENTS_H_
#define S3_SOCIAL_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "doc/document_store.h"
#include "social/edge_store.h"
#include "social/entity.h"

namespace s3::social {

using ComponentId = uint32_t;
inline constexpr ComponentId kInvalidComponent = UINT32_MAX;

class ComponentIndex {
 public:
  // Computes the partition. Only fragment and tag entities belong to
  // components; users map to kInvalidComponent.
  void Build(const EntityLayout& layout, const EdgeStore& edges,
             const doc::DocumentStore& docs);

  ComponentId OfRow(uint32_t row) const { return comp_of_row_[row]; }
  ComponentId Of(EntityId e) const;

  // Members (entity rows) of one component.
  const std::vector<uint32_t>& Members(ComponentId c) const {
    return members_[c];
  }

  size_t ComponentCount() const { return members_.size(); }

 private:
  const EntityLayout* layout_ = nullptr;
  std::vector<ComponentId> comp_of_row_;
  std::vector<std::vector<uint32_t>> members_;
};

}  // namespace s3::social

#endif  // S3_SOCIAL_COMPONENTS_H_
