// Unified identifier space for the vertices of the S3 network graph:
// users (Ω), document fragments (D) and tags (T). Social paths (paper
// §2.5) run over exactly these three populations.
#ifndef S3_SOCIAL_ENTITY_H_
#define S3_SOCIAL_ENTITY_H_

#include <cstdint>
#include <functional>
#include <string>

namespace s3::social {

using UserId = uint32_t;
using TagId = uint32_t;

enum class EntityKind : uint8_t { kUser = 0, kFragment = 1, kTag = 2 };

// Packed (kind, index) pair. Index is bounded by 2^30.
class EntityId {
 public:
  EntityId() : packed_(UINT32_MAX) {}
  EntityId(EntityKind kind, uint32_t index)
      : packed_((static_cast<uint32_t>(kind) << 30) | index) {}

  static EntityId User(UserId u) { return EntityId(EntityKind::kUser, u); }
  // Inverse of packed() — the storage layer's serialized form. The
  // caller must validate the kind bits (packed >> 30 == 3 names no
  // entity kind) before trusting the result; see EntityId::ValidKind.
  static EntityId FromPacked(uint32_t packed) {
    EntityId e;
    e.packed_ = packed;
    return e;
  }
  static bool ValidKind(uint32_t packed) { return (packed >> 30) <= 2; }
  static EntityId Fragment(uint32_t node) {
    return EntityId(EntityKind::kFragment, node);
  }
  static EntityId Tag(TagId t) { return EntityId(EntityKind::kTag, t); }

  bool valid() const { return packed_ != UINT32_MAX; }
  EntityKind kind() const {
    return static_cast<EntityKind>(packed_ >> 30);
  }
  uint32_t index() const { return packed_ & 0x3fffffffu; }
  uint32_t packed() const { return packed_; }

  bool operator==(const EntityId& o) const { return packed_ == o.packed_; }
  bool operator!=(const EntityId& o) const { return packed_ != o.packed_; }
  bool operator<(const EntityId& o) const { return packed_ < o.packed_; }

  std::string ToString() const;

 private:
  uint32_t packed_;
};

// Maps entities to a dense row space [0, total): users first, then
// fragments, then tags. Used by the transition matrix and the allProx /
// borderProx vectors.
class EntityLayout {
 public:
  EntityLayout(uint32_t n_users, uint32_t n_fragments, uint32_t n_tags)
      : n_users_(n_users), n_fragments_(n_fragments), n_tags_(n_tags) {}

  uint32_t total() const { return n_users_ + n_fragments_ + n_tags_; }
  uint32_t n_users() const { return n_users_; }
  uint32_t n_fragments() const { return n_fragments_; }
  uint32_t n_tags() const { return n_tags_; }

  uint32_t Row(EntityId e) const {
    switch (e.kind()) {
      case EntityKind::kUser:
        return e.index();
      case EntityKind::kFragment:
        return n_users_ + e.index();
      case EntityKind::kTag:
        return n_users_ + n_fragments_ + e.index();
    }
    return UINT32_MAX;
  }

  EntityId Entity(uint32_t row) const {
    if (row < n_users_) return EntityId::User(row);
    if (row < n_users_ + n_fragments_) {
      return EntityId::Fragment(row - n_users_);
    }
    return EntityId::Tag(row - n_users_ - n_fragments_);
  }

 private:
  uint32_t n_users_;
  uint32_t n_fragments_;
  uint32_t n_tags_;
};

}  // namespace s3::social

template <>
struct std::hash<s3::social::EntityId> {
  size_t operator()(const s3::social::EntityId& e) const {
    return std::hash<uint32_t>()(e.packed());
  }
};

#endif  // S3_SOCIAL_ENTITY_H_
