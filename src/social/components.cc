#include "social/components.h"

#include <cassert>
#include <numeric>

namespace s3::social {

namespace {

// Plain union-find with path halving and union by size, operating on a
// caller-owned parent vector (so the forest can persist in the index).
class UnionFind {
 public:
  explicit UnionFind(std::vector<uint32_t>& parent)
      : parent_(parent), size_(parent.size(), 1) {}

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t>& parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

void ComponentIndex::AssignComponents(const EntityLayout& layout) {
  const uint32_t total = layout.total();
  comp_of_row_.assign(total, kInvalidComponent);
  members_.clear();
  // Non-mutating root resolution: walk each unresolved chain up to its
  // root (or to a row whose root is already memoized) and backfill the
  // memo along the walked path — O(rows) amortized, and the forest
  // itself (possibly a view into an mmap'd snapshot) is never written.
  std::vector<uint32_t> root_of(total, UINT32_MAX);
  std::vector<uint32_t> path;
  auto resolve_root = [&](uint32_t row) {
    path.clear();
    uint32_t x = row;
    while (root_of[x] == UINT32_MAX && uf_parent_[x] != x) {
      path.push_back(x);
      x = uf_parent_[x];
    }
    const uint32_t root = root_of[x] == UINT32_MAX ? x : root_of[x];
    root_of[x] = root;
    for (uint32_t p : path) root_of[p] = root;
    return root;
  };
  std::vector<ComponentId> root_to_comp(total, kInvalidComponent);
  for (uint32_t row = 0; row < total; ++row) {
    EntityKind kind = layout.Entity(row).kind();
    if (kind == EntityKind::kUser) continue;
    uint32_t root = resolve_root(row);
    ComponentId c = root_to_comp[root];
    if (c == kInvalidComponent) {
      c = static_cast<ComponentId>(members_.size());
      root_to_comp[root] = c;
      members_.emplace_back();
    }
    comp_of_row_[row] = c;
    members_[c].push_back(row);
  }
}

Status ComponentIndex::AdoptForest(const EntityLayout& layout,
                                   StorageSpan<uint32_t> forest) {
  const uint32_t total = layout.total();
  if (forest.size() != total) {
    return Status::InvalidArgument("component forest: row count mismatch");
  }
  for (uint32_t row = 0; row < total; ++row) {
    if (forest[row] >= total) {
      return Status::InvalidArgument(
          "component forest: parent out of range at row " +
          std::to_string(row));
    }
    // Users never join components, so their rows are always their own
    // roots in a well-formed snapshot.
    if (layout.Entity(row).kind() == EntityKind::kUser &&
        forest[row] != row) {
      return Status::InvalidArgument(
          "component forest: user row not a singleton");
    }
  }
  // A parent cycle would hang UnionFind::Find, so corrupt input must be
  // rejected before adoption. One O(rows) pass: walk each unvisited
  // chain; meeting this walk's own stamp before a root or a
  // known-terminating row is a cycle.
  {
    std::vector<uint32_t> stamp(total, UINT32_MAX);
    const uint32_t kDone = total;
    for (uint32_t row = 0; row < total; ++row) {
      uint32_t x = row;
      while (stamp[x] != kDone && forest[x] != x) {
        if (stamp[x] == row) {
          return Status::InvalidArgument(
              "component forest: parent cycle at row " +
              std::to_string(x));
        }
        stamp[x] = row;
        x = forest[x];
      }
      for (x = row; stamp[x] == row; x = forest[x]) stamp[x] = kDone;
      stamp[x] = kDone;
    }
  }
  layout_ = &layout;
  uf_parent_ = std::move(forest);
  AssignComponents(layout);
  return Status::OK();
}

void ComponentIndex::Build(const EntityLayout& layout,
                           const EdgeStore& edges,
                           const doc::DocumentStore& docs) {
  layout_ = &layout;
  const uint32_t total = layout.total();
  std::vector<uint32_t> parent(total);
  std::iota(parent.begin(), parent.end(), 0u);
  UnionFind uf(parent);

  // S3:partOf: all nodes of one document tree are one cluster.
  for (doc::DocId d = 0; d < docs.DocumentCount(); ++d) {
    const doc::Document& document = docs.document(d);
    uint32_t root_row = layout.Row(EntityId::Fragment(docs.RootNode(d)));
    for (uint32_t local = 1; local < document.NodeCount(); ++local) {
      uf.Union(root_row, layout.Row(EntityId::Fragment(
                             docs.GlobalId(d, local))));
    }
  }

  // commentsOn / hasSubject (inverses connect the same pairs).
  for (const NetEdge& e : edges.edges()) {
    if (e.label == EdgeLabel::kCommentsOn ||
        e.label == EdgeLabel::kHasSubject) {
      uf.Union(layout.Row(e.source), layout.Row(e.target));
    }
  }

  uf_parent_ = std::move(parent);
  AssignComponents(layout);
}

void ComponentIndex::BuildIncremental(const EntityLayout& new_layout,
                                      const EdgeStore& edges,
                                      const doc::DocumentStore& docs,
                                      doc::DocId first_new_doc,
                                      uint32_t first_new_edge,
                                      uint32_t old_tag_base,
                                      uint32_t n_new_fragments) {
  const uint32_t total = new_layout.total();
  const uint32_t old_total = static_cast<uint32_t>(uf_parent_.size());
  assert(total >= old_total);

  // Remap the persisted forest into the post-delta row space (tag rows
  // shift up by n_new_fragments); new rows start as singletons.
  auto remap = [&](uint32_t row) {
    return row < old_tag_base ? row : row + n_new_fragments;
  };
  // The pre-delta forest (possibly view-backed) is read while the
  // remapped successor accumulates in owned scratch; unions — and
  // their path compression — touch only the scratch vector.
  std::vector<uint32_t> parent(total);
  std::iota(parent.begin(), parent.end(), 0u);
  for (uint32_t row = 0; row < old_total; ++row) {
    parent[remap(row)] = remap(uf_parent_[row]);
  }
  UnionFind uf(parent);

  // partOf clusters of the delta's documents.
  for (doc::DocId d = first_new_doc; d < docs.DocumentCount(); ++d) {
    const doc::Document& document = docs.document(d);
    uint32_t root_row =
        new_layout.Row(EntityId::Fragment(docs.RootNode(d)));
    for (uint32_t local = 1; local < document.NodeCount(); ++local) {
      uf.Union(root_row, new_layout.Row(EntityId::Fragment(
                             docs.GlobalId(d, local))));
    }
  }

  // Linking edges appended by the delta — endpoints may be pre-delta
  // entities, which is how a delta merges existing components.
  for (uint32_t idx = first_new_edge; idx < edges.size(); ++idx) {
    const NetEdge& e = edges.edge(idx);
    if (e.label == EdgeLabel::kCommentsOn ||
        e.label == EdgeLabel::kHasSubject) {
      uf.Union(new_layout.Row(e.source), new_layout.Row(e.target));
    }
  }

  layout_ = &new_layout;
  uf_parent_ = std::move(parent);
  AssignComponents(new_layout);
}

ComponentId ComponentIndex::Of(EntityId e) const {
  return comp_of_row_[layout_->Row(e)];
}

}  // namespace s3::social
