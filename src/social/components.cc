#include "social/components.h"

#include <numeric>

namespace s3::social {

namespace {

// Plain union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

void ComponentIndex::Build(const EntityLayout& layout,
                           const EdgeStore& edges,
                           const doc::DocumentStore& docs) {
  layout_ = &layout;
  const uint32_t total = layout.total();
  UnionFind uf(total);

  // S3:partOf: all nodes of one document tree are one cluster.
  for (doc::DocId d = 0; d < docs.DocumentCount(); ++d) {
    const doc::Document& document = docs.document(d);
    uint32_t root_row = layout.Row(EntityId::Fragment(docs.RootNode(d)));
    for (uint32_t local = 1; local < document.NodeCount(); ++local) {
      uf.Union(root_row, layout.Row(EntityId::Fragment(
                             docs.GlobalId(d, local))));
    }
  }

  // commentsOn / hasSubject (inverses connect the same pairs).
  for (const NetEdge& e : edges.edges()) {
    if (e.label == EdgeLabel::kCommentsOn ||
        e.label == EdgeLabel::kHasSubject) {
      uf.Union(layout.Row(e.source), layout.Row(e.target));
    }
  }

  comp_of_row_.assign(total, kInvalidComponent);
  members_.clear();
  std::vector<ComponentId> root_to_comp(total, kInvalidComponent);
  for (uint32_t row = 0; row < total; ++row) {
    EntityKind kind = layout.Entity(row).kind();
    if (kind == EntityKind::kUser) continue;
    uint32_t root = uf.Find(row);
    ComponentId c = root_to_comp[root];
    if (c == kInvalidComponent) {
      c = static_cast<ComponentId>(members_.size());
      root_to_comp[root] = c;
      members_.emplace_back();
    }
    comp_of_row_[row] = c;
    members_[c].push_back(row);
  }
}

ComponentId ComponentIndex::Of(EntityId e) const {
  return comp_of_row_[layout_->Row(e)];
}

}  // namespace s3::social
