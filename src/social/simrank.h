// SimRank structural-context similarity [Jeh & Widom, KDD'02] over the
// user graph — the alternative social proximity the paper names in
// §3.4 ("other common distances may be used, e.g., SimRank").
//
// s(a,a) = 1;  s(a,b) = C / (|I(a)||I(b)|) · Σ_{i∈I(a), j∈I(b)} s(i,j)
// with I(x) the in-neighbors of x. Computed by fixpoint iteration over
// the dense pair matrix — O(n²·d²) per iteration, so intended for
// moderate user counts (ablations, re-ranking studies), not the full
// bench instances.
#ifndef S3_SOCIAL_SIMRANK_H_
#define S3_SOCIAL_SIMRANK_H_

#include <cstdint>
#include <vector>

#include "social/edge_store.h"

namespace s3::social {

struct SimRankOptions {
  double decay = 0.8;      // the C constant
  size_t iterations = 6;   // k iterations bound the error by C^k
};

// Dense symmetric similarity matrix over users; entry [a*n + b].
class SimRank {
 public:
  // Computes SimRank over the kSocial edges of `edges` for users
  // [0, n_users).
  void Compute(const EdgeStore& edges, uint32_t n_users,
               const SimRankOptions& options = {});

  double Similarity(uint32_t a, uint32_t b) const {
    return scores_[static_cast<size_t>(a) * n_ + b];
  }
  uint32_t n_users() const { return n_; }

 private:
  uint32_t n_ = 0;
  std::vector<double> scores_;
};

}  // namespace s3::social

#endif  // S3_SOCIAL_SIMRANK_H_
