// Network edges of an S3 instance (paper §2.5): the weighted edges
// "encapsulating quantitative information on the links between users,
// documents and tags" — every S3-namespace property except S3:partOf,
// restricted to endpoints in Ω ∪ D ∪ T.
//
// Inverse properties (S3:postedBy‾ etc.) are stored as first-class
// edges, mirroring the paper's syntactic-sugar definition
// s p̄ o ∈ I iff o p s ∈ I.
//
// Storage is built for the live-update pipeline's copy-on-write
// snapshots: the append-only edge log lives in fixed-size immutable
// chunks behind shared_ptr (a copied store shares every full chunk and
// clones only the tail chunk on its next append), and the per-entity
// adjacency rows are individually shared_ptr'd (a copied store clones
// only the rows its new edges actually touch).
#ifndef S3_SOCIAL_EDGE_STORE_H_
#define S3_SOCIAL_EDGE_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "social/entity.h"

namespace s3::social {

// Label of a network edge. Inverses are separate labels so that a path
// can be reported exactly as traversed.
enum class EdgeLabel : uint8_t {
  kSocial = 0,      // user  -> user
  kPostedBy,        // doc   -> user
  kPostedByInv,     // user  -> doc
  kCommentsOn,      // doc   -> doc
  kCommentsOnInv,   // doc   -> doc
  kHasSubject,      // tag   -> doc or tag
  kHasSubjectInv,   // doc/tag -> tag
  kHasAuthor,       // tag   -> user
  kHasAuthorInv,    // user  -> tag
};

const char* EdgeLabelName(EdgeLabel label);

// Returns the inverse label (kSocial is its own inverse only in the
// sense that no inverse is materialized for it; see AddSocial).
EdgeLabel InverseLabel(EdgeLabel label);

struct NetEdge {
  EntityId source;
  EntityId target;
  EdgeLabel label;
  double weight;
};

// Append-only store of network edges with per-entity outgoing
// adjacency. Copyable in O(chunks + adjacency rows); the copy shares
// all edge payloads with the original (see file comment).
class EdgeStore {
 public:
  // Edges per immutable log chunk. All chunks except the last hold
  // exactly this many edges, so edge(i) is two indexations.
  static constexpr uint32_t kChunkSize = 4096;

  // Adds a directed edge. Weight must be in (0, 1].
  void Add(EntityId source, EntityId target, EdgeLabel label,
           double weight = 1.0);

  // Adds an edge and its inverse twin (both weight `weight`).
  void AddWithInverse(EntityId source, EntityId target, EdgeLabel label,
                      double weight = 1.0);

  // Outgoing edges of `e` (indices into the edge log).
  const std::vector<uint32_t>& OutEdges(EntityId e) const;

  // Sum of weights of edges leaving `e` alone (not its neighborhood).
  double OutWeight(EntityId e) const;

  // The i-th edge of the log (insertion order).
  const NetEdge& edge(uint32_t idx) const {
    return (*chunks_[idx / kChunkSize])[idx % kChunkSize];
  }

  size_t size() const { return n_edges_; }

  // Read-only view of the whole log (insertion order), supporting
  // range-for and operator[] like the vector it replaces.
  class EdgeView {
   public:
    class Iterator {
     public:
      Iterator(const EdgeStore* store, uint32_t idx)
          : store_(store), idx_(idx) {}
      const NetEdge& operator*() const { return store_->edge(idx_); }
      Iterator& operator++() {
        ++idx_;
        return *this;
      }
      bool operator!=(const Iterator& o) const { return idx_ != o.idx_; }
      bool operator==(const Iterator& o) const { return idx_ == o.idx_; }

     private:
      const EdgeStore* store_;
      uint32_t idx_;
    };

    explicit EdgeView(const EdgeStore* store) : store_(store) {}
    Iterator begin() const { return Iterator(store_, 0); }
    Iterator end() const {
      return Iterator(store_, static_cast<uint32_t>(store_->size()));
    }
    const NetEdge& operator[](uint32_t idx) const {
      return store_->edge(idx);
    }
    size_t size() const { return store_->size(); }

   private:
    const EdgeStore* store_;
  };

  EdgeView edges() const { return EdgeView(this); }

  // Number of edges with a given label.
  size_t CountLabel(EdgeLabel label) const;

  // True if `e`'s adjacency row is shared with `other`
  // (structural-sharing introspection for tests).
  bool SharesAdjacencyRow(const EdgeStore& other, EntityId e) const;

 private:
  struct AdjRow {
    std::vector<uint32_t> edges;
    double weight_sum = 0.0;
  };

  using Chunk = std::vector<NetEdge>;

  std::vector<std::shared_ptr<Chunk>> chunks_;
  size_t n_edges_ = 0;
  std::unordered_map<EntityId, std::shared_ptr<AdjRow>> out_;
};

}  // namespace s3::social

#endif  // S3_SOCIAL_EDGE_STORE_H_
