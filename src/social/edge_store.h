// Network edges of an S3 instance (paper §2.5): the weighted edges
// "encapsulating quantitative information on the links between users,
// documents and tags" — every S3-namespace property except S3:partOf,
// restricted to endpoints in Ω ∪ D ∪ T.
//
// Inverse properties (S3:postedBy‾ etc.) are stored as first-class
// edges, mirroring the paper's syntactic-sugar definition
// s p̄ o ∈ I iff o p s ∈ I.
#ifndef S3_SOCIAL_EDGE_STORE_H_
#define S3_SOCIAL_EDGE_STORE_H_

#include <cstdint>
#include <vector>

#include "social/entity.h"

namespace s3::social {

// Label of a network edge. Inverses are separate labels so that a path
// can be reported exactly as traversed.
enum class EdgeLabel : uint8_t {
  kSocial = 0,      // user  -> user
  kPostedBy,        // doc   -> user
  kPostedByInv,     // user  -> doc
  kCommentsOn,      // doc   -> doc
  kCommentsOnInv,   // doc   -> doc
  kHasSubject,      // tag   -> doc or tag
  kHasSubjectInv,   // doc/tag -> tag
  kHasAuthor,       // tag   -> user
  kHasAuthorInv,    // user  -> tag
};

const char* EdgeLabelName(EdgeLabel label);

// Returns the inverse label (kSocial is its own inverse only in the
// sense that no inverse is materialized for it; see AddSocial).
EdgeLabel InverseLabel(EdgeLabel label);

struct NetEdge {
  EntityId source;
  EntityId target;
  EdgeLabel label;
  double weight;
};

// Append-only store of network edges with per-entity outgoing
// adjacency.
class EdgeStore {
 public:
  // Adds a directed edge. Weight must be in (0, 1].
  void Add(EntityId source, EntityId target, EdgeLabel label,
           double weight = 1.0);

  // Adds an edge and its inverse twin (both weight `weight`).
  void AddWithInverse(EntityId source, EntityId target, EdgeLabel label,
                      double weight = 1.0);

  // Outgoing edges of `e` (indices into edges()).
  const std::vector<uint32_t>& OutEdges(EntityId e) const;

  // Sum of weights of edges leaving `e` alone (not its neighborhood).
  double OutWeight(EntityId e) const;

  const std::vector<NetEdge>& edges() const { return edges_; }
  size_t size() const { return edges_.size(); }

  // Number of edges with a given label.
  size_t CountLabel(EdgeLabel label) const;

 private:
  std::vector<NetEdge> edges_;
  std::unordered_map<EntityId, std::vector<uint32_t>> out_;
  std::unordered_map<EntityId, double> out_weight_;
};

}  // namespace s3::social

#endif  // S3_SOCIAL_EDGE_STORE_H_
