// AVX2 build of the shared L-lane CSR kernels (propagate_kernels.h).
//
// The kernels themselves are plain C++; this TU is the *only* one
// compiled with -mavx2 (plus -ffp-contract=off so no FMA contraction
// can creep in), and TransitionMatrix dispatches to it at runtime when
// the host CPU supports AVX2. Only the element-wise lane dimension
// vectorizes, so the AVX2 results are bit-for-bit the scalar results.
//
// The symbols exist only when CMake enables the TU (S3_SIMD=ON on an
// x86-64 GCC/Clang build); callers gate on S3_SIMD_AVX2.
#ifndef S3_SOCIAL_PROPAGATE_AVX2_H_
#define S3_SOCIAL_PROPAGATE_AVX2_H_

#include <cstddef>
#include <cstdint>

namespace s3::social::avx2 {

void ScatterRow(size_t lanes, const uint32_t* cols, const double* vals,
                size_t n, const double* mass, double* out);
void GatherRow(size_t lanes, const uint32_t* cols, const double* vals,
               size_t n, const double* in, double* acc);

}  // namespace s3::social::avx2

#endif  // S3_SOCIAL_PROPAGATE_AVX2_H_
