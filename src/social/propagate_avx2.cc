// AVX2 instantiation of the shared propagation kernels. See
// propagate_avx2.h for the dispatch contract. The body is guarded so
// the file compiles to nothing when the build does not enable the TU
// (S3_SIMD=OFF, non-x86 target, or a compiler without -mavx2): the
// source list is glob-based, so the guard — not the build system —
// keeps scalar builds scalar.
#if defined(S3_SIMD_AVX2_TU)

#include "social/propagate_avx2.h"
#include "social/propagate_kernels.h"

namespace s3::social::avx2 {

void ScatterRow(size_t lanes, const uint32_t* cols, const double* vals,
                size_t n, const double* mass, double* out) {
  pk::ScatterRow(lanes, cols, vals, n, mass, out);
}

void GatherRow(size_t lanes, const uint32_t* cols, const double* vals,
               size_t n, const double* in, double* acc) {
  pk::GatherRow(lanes, cols, vals, n, in, acc);
}

}  // namespace s3::social::avx2

#endif  // S3_SIMD_AVX2_TU
