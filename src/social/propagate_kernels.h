// L-lane CSR propagation kernels shared by the single-seeker and
// batched exploration paths (and compiled a second time under -mavx2
// in propagate_avx2.cc for the runtime-dispatched SIMD variant).
//
// Layout: a batched frontier stores L per-seeker values contiguously
// per entity row (values[row*L + lane]) — the textbook SpMM shape: one
// CSR walk over the matrix streams L independent right-hand sides.
// The compiler vectorizes the fixed-width inner lane loop only; the
// per-lane operation sequence over CSR entries is exactly the scalar
// single-seeker order, so every lane's result is bit-for-bit the value
// a lone query would compute. (No FMA contraction, no reassociation:
// the TUs compile without -mfma / fast-math, and the lane dimension is
// element-wise, so there is nothing for the compiler to reorder.)
#ifndef S3_SOCIAL_PROPAGATE_KERNELS_H_
#define S3_SOCIAL_PROPAGATE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace s3::social::pk {

// Push (scatter) step for one source row: for each CSR entry
// (cols[i], vals[i]) of the row, out[cols[i]*L + l] += mass[l]*vals[i].
template <int L>
inline void ScatterRowT(const uint32_t* cols, const double* vals, size_t n,
                        const double* __restrict mass,
                        double* __restrict out) {
  for (size_t i = 0; i < n; ++i) {
    double* __restrict o = out + static_cast<size_t>(cols[i]) * L;
    const double v = vals[i];
    for (int l = 0; l < L; ++l) o[l] += mass[l] * v;
  }
}

// Pull (gather) step for one output row: acc[l] = Σ_i in[cols[i]*L + l]
// * vals[i] over the transpose row's entries. Entries accumulate in
// ascending source-row order — the same order the push form visits
// them — so pull and push produce bitwise-identical sums.
template <int L>
inline void GatherRowT(const uint32_t* cols, const double* vals, size_t n,
                       const double* __restrict in, double* __restrict acc) {
  for (int l = 0; l < L; ++l) acc[l] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* __restrict p = in + static_cast<size_t>(cols[i]) * L;
    const double v = vals[i];
    for (int l = 0; l < L; ++l) acc[l] += p[l] * v;
  }
}

// Runtime-width dispatchers. Lane counts are padded to 1, 2, 4, 8 or a
// multiple of 4 (social::PadLanes), so the generic tail runs the fixed
// 4-wide kernel over lane chunks.
inline void ScatterRow(size_t lanes, const uint32_t* cols, const double* vals,
                       size_t n, const double* mass, double* out) {
  switch (lanes) {
    case 1: return ScatterRowT<1>(cols, vals, n, mass, out);
    case 2: return ScatterRowT<2>(cols, vals, n, mass, out);
    case 4: return ScatterRowT<4>(cols, vals, n, mass, out);
    case 8: return ScatterRowT<8>(cols, vals, n, mass, out);
    default:
      for (size_t i = 0; i < n; ++i) {
        double* o = out + static_cast<size_t>(cols[i]) * lanes;
        const double v = vals[i];
        for (size_t c = 0; c + 4 <= lanes; c += 4) {
          for (int l = 0; l < 4; ++l) o[c + l] += mass[c + l] * v;
        }
      }
  }
}

inline void GatherRow(size_t lanes, const uint32_t* cols, const double* vals,
                      size_t n, const double* in, double* acc) {
  switch (lanes) {
    case 1: return GatherRowT<1>(cols, vals, n, in, acc);
    case 2: return GatherRowT<2>(cols, vals, n, in, acc);
    case 4: return GatherRowT<4>(cols, vals, n, in, acc);
    case 8: return GatherRowT<8>(cols, vals, n, in, acc);
    default:
      for (size_t l = 0; l < lanes; ++l) acc[l] = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double* p = in + static_cast<size_t>(cols[i]) * lanes;
        const double v = vals[i];
        for (size_t c = 0; c + 4 <= lanes; c += 4) {
          for (int l = 0; l < 4; ++l) acc[c + l] += p[c + l] * v;
        }
      }
  }
}

}  // namespace s3::social::pk

#endif  // S3_SOCIAL_PROPAGATE_KERNELS_H_
