// Normalized social-path transition matrix.
//
// Paper §2.5 defines path normalization: when a path enters a node n
// (the end of the previous edge), the next edge e — which may leave n
// or any of its vertical neighbors — gets the normalized weight
//     e.n_w = e.w / Σ_{e' ∈ out(neigh(n))} e'.w .
// Because the denominator depends only on the entered node n, all the
// normalized continuations from n form a row of a (sub)stochastic
// matrix T:
//     T[n][m] = Σ_{e: x→m, x ∈ neigh(n)∪{n}} e.w / D(n),
//     D(n)    = Σ_{e' ∈ out(neigh(n)∪{n})} e'.w .
// The k-step frontier of the seeker (the paper's borderProx, §5.2) is
// then δ_u · T^k, computed by repeated sparse vector-matrix products.
// Row sums are ≤ 1, which yields the exact long-path attenuation bound
// B>n_prox = γ^-(n+1) used by S3k.
#ifndef S3_SOCIAL_TRANSITION_MATRIX_H_
#define S3_SOCIAL_TRANSITION_MATRIX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/storage_span.h"
#include "common/thread_pool.h"
#include "doc/document_store.h"
#include "social/edge_store.h"
#include "social/entity.h"

namespace s3::social {

// Sparse frontier vector over the dense entity-row space.
struct Frontier {
  std::vector<double> values;    // dense, size = layout.total()
  std::vector<uint32_t> nonzero; // rows with values[row] != 0

  void Clear();
  void Init(size_t total_rows);
  void Set(uint32_t row, double v);
  double Sum() const;
};

// Hard cap on the lane count of a BatchFrontier (and hence on the
// multi-seeker batch width): bounds the stack accumulators inside the
// pull kernels.
inline constexpr size_t kMaxFrontierLanes = 32;

// Rounds a batch width up to a kernel-friendly lane count: 1, 2, 4 or
// the next multiple of 4 (see pk::ScatterRow/GatherRow dispatch).
inline constexpr size_t PadLanes(size_t b) {
  if (b <= 2) return b < 1 ? 1 : b;
  return (b + 3) / 4 * 4;
}

// L per-seeker frontiers in one dense SoA buffer: values[row*lanes + l]
// is lane l's mass on `row` (the SpMM right-hand-side layout of
// propagate_kernels.h). `nonzero` is the union support over lanes —
// sorted ascending after every propagate step — while per-seeker
// frontier exhaustion is tracked per lane in `lane_mass` (a lane can
// die out while the union stays populated).
struct BatchFrontier {
  std::vector<double> values;      // total_rows * lanes
  std::vector<uint32_t> nonzero;   // union over lanes
  std::vector<uint8_t> lane_mass;  // lane has some nonzero value
  size_t lanes = 0;

  void Init(size_t total_rows, size_t n_lanes);
  void Clear();
  // Sets one lane's value (seeker seeding); keeps `nonzero` deduped
  // even when two lanes share a row.
  void Set(uint32_t row, size_t lane, double v);
  // Zeroes one lane's column (a converged seeker drops out of the
  // batch); the union support shrinks at the next propagate step.
  void ZeroLane(size_t lane);
  bool LaneHasMass(size_t lane) const { return lane_mass[lane] != 0; }

  // First-touch scatter scratch for the push step (epoch-marked).
  std::vector<uint32_t> touch_epoch;
  uint32_t epoch = 0;
};

// CSR matrix over entity rows.
class TransitionMatrix {
 public:
  // Builds T from the network edges and the document structure
  // (vertical neighborhoods). Layout must cover all entities referenced
  // by the edge store.
  void Build(const EntityLayout& layout, const EdgeStore& edges,
             const doc::DocumentStore& docs);

  // Live-update path: rebuilds this matrix (previously built for the
  // pre-delta instance) for the post-delta row space without
  // recomputing untouched rows. `touched[row]` (indexed in the *new*
  // row space, size new_layout.total()) marks rows whose neighborhood
  // gained an out-edge; new-entity rows are recomputed regardless.
  // `old_tag_base` is the pre-delta row of tag 0 (users + old
  // fragments) and `n_new_fragments` the fragment-count growth — the
  // delta appends fragments before the tag block, so every old tag row
  // (and every matrix column >= old_tag_base) shifts up by
  // n_new_fragments; untouched rows are spliced over with that column
  // remap, bit-identical values included.
  void IncrementalUpdate(const EntityLayout& new_layout,
                         const EdgeStore& edges,
                         const doc::DocumentStore& docs,
                         const std::vector<char>& touched,
                         uint32_t old_tag_base, uint32_t n_new_fragments);

  // out = in · T  (one exploration step). `out` is overwritten.
  void Propagate(const Frontier& in, Frontier& out) const;

  // Same product, computed pull-style over the stored transpose and
  // parallelized across output rows. Worth it once the frontier is
  // dense (it saturates the reachable graph after a few steps); the
  // push form wins on sparse frontiers.
  void PropagateParallel(const Frontier& in, Frontier& out,
                         ThreadPool& pool) const;

  // Adaptive step: measures the frontier's density — the matrix
  // nonzeros a push step would actually touch, via row_ptr — and picks
  // push (sparse scatter) or pull (dense sequential gather over the
  // transpose, parallelized when `pool` is non-null) accordingly.
  // `in.nonzero` is expected sorted ascending (for sequential CSR
  // access); `out.nonzero` is always left sorted, so chaining
  // PropagateAdaptive steps maintains the invariant.
  void PropagateAdaptive(const Frontier& in, Frontier& out,
                         ThreadPool* pool) const;

  // Batched multi-seeker step: out = in · T on every lane at once —
  // one CSR walk streams all lanes through the shared kernels
  // (propagate_kernels.h; AVX2-dispatched when built in). Same push /
  // pull density adaptation as PropagateAdaptive, measured on the
  // union support. Each lane's values are bit-for-bit what a
  // single-seeker PropagateAdaptive chain would produce for that lane
  // alone: the lane dimension is element-wise, and push and pull both
  // accumulate per output row in ascending source-row order.
  // `out.nonzero` is left sorted and holds exactly the rows with some
  // nonzero lane; `out.lane_mass` flags per-lane survival.
  //
  // `pull_rows`, when non-null, restricts the pull (dense) step to that
  // sorted-ascending row list — the caller guarantees every row whose
  // gather could be nonzero is in the list (e.g. all rows of the
  // seeker's reach component: mass seeded there can never leave it, so
  // skipped rows always gather exactly 0.0 and bit-for-bit equality
  // with the unrestricted step holds). The push step ignores it (push
  // only writes rows the frontier's mass actually reaches) and the
  // density crossover is scaled to the restricted pull cost.
  // `used_pull`, when non-null, reports which side of the crossover
  // ran (true = pull/dense) — observability only, the verdict itself
  // is unchanged.
  void PropagateBatchAdaptive(const BatchFrontier& in, BatchFrontier& out,
                              ThreadPool* pool,
                              const std::vector<uint32_t>* pull_rows = nullptr,
                              bool* used_pull = nullptr) const;

  // Normalization denominator D(n) for the row of entity `n` (0 if the
  // neighborhood has no outgoing edge).
  double Denominator(uint32_t row) const { return denom_[row]; }

  // Sum of the row (≤ 1; 0 for sink rows).
  double RowSum(uint32_t row) const;

  size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  size_t nonzeros() const { return cols_.size(); }

  // Entries of one row as (column, value) pairs — for tests and for the
  // naive reference implementation.
  std::vector<std::pair<uint32_t, double>> Row(uint32_t row) const;

  // ---- snapshot (de)serialization hooks --------------------------------

  // Raw CSR views for the binary snapshot writer. The transpose is not
  // exposed: it is a pure function of the CSR and is rebuilt on Adopt.
  // Each array may be heap-owned (Build/IncrementalUpdate output, v1
  // loads) or a view into an mmap'd snapshot section (v2 attach).
  const StorageSpan<uint64_t>& row_ptr() const { return row_ptr_; }
  const StorageSpan<uint32_t>& col_index() const { return cols_; }
  const StorageSpan<double>& values() const { return vals_; }
  const StorageSpan<double>& denominators() const { return denom_; }

  // Binary-load path: adopts a deserialized CSR wholesale — shape
  // validation only (monotone row_ptr, in-range strictly-ascending
  // columns per row, matching array sizes); the float values are
  // covered by the snapshot's checksum framing — and rebuilds the
  // transpose (always heap-owned, even when the CSR arrays are views).
  // `n_rows` is the entity-row count the matrix must cover.
  Status Adopt(StorageSpan<uint64_t> row_ptr, StorageSpan<uint32_t> cols,
               StorageSpan<double> vals, StorageSpan<double> denom,
               size_t n_rows);

 private:
  // Owned scratch a Build/IncrementalUpdate pass accumulates into
  // before the results are swapped into the (possibly view-backed)
  // spans — mutation never happens through an adopted array.
  struct CsrBuild {
    std::vector<uint64_t> row_ptr;
    std::vector<uint32_t> cols;
    std::vector<double> vals;
    std::vector<double> denom;
  };

  // Computes one row (denominator + sorted normalized entries) and
  // appends it to `b`; shared by Build and IncrementalUpdate.
  void AppendComputedRow(
      uint32_t row, const EntityLayout& layout, const EdgeStore& edges,
      const doc::DocumentStore& docs, CsrBuild& b,
      std::unordered_map<uint32_t, double>& row_acc,
      std::vector<std::pair<uint32_t, double>>& sorted_row);

  // Rebuilds the transpose arrays from row_ptr_/cols_/vals_.
  void BuildTranspose();

  // Push (sparse scatter) / pull (dense gather) halves of
  // PropagateBatchAdaptive.
  void PropagateBatchPush(const BatchFrontier& in, BatchFrontier& out) const;
  void PropagateBatchPull(const BatchFrontier& in, BatchFrontier& out,
                          ThreadPool* pool,
                          const std::vector<uint32_t>* pull_rows) const;

  StorageSpan<uint64_t> row_ptr_;
  StorageSpan<uint32_t> cols_;
  StorageSpan<double> vals_;
  StorageSpan<double> denom_;
  // Transpose (in-edges per row), for the pull-based parallel product.
  // Always heap-owned: it is rebuilt from the CSR on every adopt.
  std::vector<uint64_t> t_row_ptr_;
  std::vector<uint32_t> t_cols_;
  std::vector<double> t_vals_;
};

}  // namespace s3::social

#endif  // S3_SOCIAL_TRANSITION_MATRIX_H_
