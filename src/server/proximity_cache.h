// Sharded LRU cache of candidate plans — the cross-query reuse layer.
//
// A CandidatePlan (core/s3k.h) is the seeker-independent half of a
// query: semantic extension, passing components, and per-component
// candidates with their connection-weight source lists. It depends
// only on the keyword multiset and the (use_semantics, eta) score
// parameters, so any two queries over the same keywords — the dominant
// case in the paper's I1/I2 workloads, whose common-keyword mixes
// repeat a small hot set — can share one plan and skip extension,
// component filtering, and ConnectionBuilder work entirely; only the
// per-seeker transition-matrix exploration remains.
//
// Keying / canonicalization: keywords are sorted before keying. The
// score is a product over query keywords, so a plan built from the
// sorted list answers any permutation of the same multiset.
//
// Invalidation: by generation tag, never by global flush. Every key
// carries the generation of the snapshot its plan was built over; a
// SwapSnapshot bumps the generation the service looks up with, so
// stale plans simply stop matching (and in-flight queries on the old
// snapshot keep hitting theirs). PurgeGenerationsBelow reclaims the
// stale entries' memory eagerly; LRU eviction would age them out
// anyway. In-flight queries keep their plan alive through the
// shared_ptr even after eviction or purge.
//
// Sharding: the key hash picks a shard; each shard is an independently
// locked LruCache, so concurrent workers only contend when their keys
// collide on a shard — not on one global mutex.
#ifndef S3_SERVER_PROXIMITY_CACHE_H_
#define S3_SERVER_PROXIMITY_CACHE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/lru_cache.h"
#include "core/s3k.h"

namespace s3::server {

// Cache key: canonicalized (sorted) keyword multiset plus the plan-
// shaping score parameters and the snapshot generation the plan was
// built over (a plan's source rows and component ids are meaningless
// against any other generation).
struct PlanCacheKey {
  std::vector<KeywordId> keywords;  // sorted ascending
  bool use_semantics = true;
  double eta = 0.5;
  uint64_t generation = 0;

  bool operator==(const PlanCacheKey& o) const {
    // eta compares by bit pattern, matching the hash below (floating
    // `==` would disagree with the hash on +0.0 vs -0.0 and on NaN,
    // violating the Hash/Eq contract the LRU map relies on).
    return use_semantics == o.use_semantics &&
           generation == o.generation &&
           std::bit_cast<uint64_t>(eta) == std::bit_cast<uint64_t>(o.eta) &&
           keywords == o.keywords;
  }
};

struct PlanCacheKeyHash {
  size_t operator()(const PlanCacheKey& key) const {
    // FNV-1a over the keyword ids and parameters.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (KeywordId k : key.keywords) mix(k);
    mix(key.use_semantics ? 1 : 0);
    mix(std::bit_cast<uint64_t>(key.eta));
    mix(key.generation);
    return static_cast<size_t>(h);
  }
};

// Canonicalizes a query keyword list into a cache key. The generation
// is deliberately not defaulted: it is load-bearing for invalidation,
// and a caller that silently pinned generation 0 would be serving
// stale plans after the first swap.
PlanCacheKey MakePlanKey(std::vector<KeywordId> keywords,
                         bool use_semantics, double eta,
                         uint64_t generation);

// Monotonic counters, readable while the cache is in use.
struct ProximityCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t purged = 0;  // stale-generation entries reclaimed
  size_t entries = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ProximityCache {
 public:
  // `shards` independently locked LRU shards of `capacity_per_shard`
  // plans each (both clamped to >= 1).
  ProximityCache(size_t shards, size_t capacity_per_shard);

  ProximityCache(const ProximityCache&) = delete;
  ProximityCache& operator=(const ProximityCache&) = delete;

  // Returns the cached plan or nullptr; counts a hit/miss.
  std::shared_ptr<const core::CandidatePlan> Lookup(const PlanCacheKey& key);

  // Inserts (or refreshes) a plan, evicting the shard's LRU entry when
  // over capacity.
  void Insert(const PlanCacheKey& key,
              std::shared_ptr<const core::CandidatePlan> plan);

  // Drops every entry whose generation is below `current` (snapshot
  // generations only grow, so those can never be looked up again), and
  // raises the insert floor so a racing plan build from an already-
  // purged generation cannot re-admit a stale entry afterwards.
  // Returns the number reclaimed. Current-generation entries — and the
  // plans in-flight queries still hold — are untouched: this is a
  // targeted purge, not a flush.
  size_t PurgeGenerationsBelow(uint64_t current);

  ProximityCacheStats Stats() const;

  size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mutex;
    LruCache<PlanCacheKey, std::shared_ptr<const core::CandidatePlan>,
             PlanCacheKeyHash>
        lru;

    explicit Shard(size_t capacity) : lru(capacity) {}
  };

  Shard& ShardFor(const PlanCacheKey& key) {
    return *shards_[PlanCacheKeyHash{}(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> purged_{0};
  // Insert floor set by PurgeGenerationsBelow; inserts below it are
  // dropped (their generation can never be looked up again).
  std::atomic<uint64_t> min_generation_{0};
};

}  // namespace s3::server

#endif  // S3_SERVER_PROXIMITY_CACHE_H_
