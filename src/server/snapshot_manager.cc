#include "server/snapshot_manager.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/file_io.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/snapshot_binary.h"

namespace s3::server {

namespace fs = std::filesystem;

namespace {

constexpr char kWalFileName[] = "wal.log";
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".s3snap";

// Generation encoded in a snapshot file name, or false if the name is
// not a snapshot file.
bool ParseSnapshotName(const std::string& name, uint64_t* generation) {
  const size_t prefix = sizeof(kSnapshotPrefix) - 1;
  const size_t suffix = sizeof(kSnapshotSuffix) - 1;
  if (!StartsWith(name, kSnapshotPrefix) || name.size() <= prefix + suffix ||
      name.substr(name.size() - suffix) != kSnapshotSuffix) {
    return false;
  }
  return ParseU64(name.substr(prefix, name.size() - prefix - suffix),
                  generation);
}

// Keeps the prefix of well-formed WAL records of lineage `lineage`
// with base generation >= `floor`; everything after the first bad
// frame is discarded, and so are foreign-lineage records — Recover
// stops replay at them, so keeping one would strand every acknowledged
// record appended after it (stray logs from an earlier deployment of
// the directory are the typical source).
std::pair<std::string, uint64_t> FilterWal(std::string_view wal,
                                           uint64_t lineage,
                                           uint64_t floor) {
  std::string kept;
  uint64_t kept_records = 0;
  size_t pos = 0;
  while (pos < wal.size()) {
    auto info = core::InstanceDelta::PeekWalRecord(wal.substr(pos));
    if (!info.ok()) break;
    if (info->base_lineage == lineage && info->base_generation >= floor) {
      kept.append(wal.substr(pos, info->record_bytes));
      ++kept_records;
    }
    pos += info->record_bytes;
  }
  return {std::move(kept), kept_records};
}

// steady_clock nanos for the freshness-lag stamp (monotonic, so the
// gauge can never go negative across wall-clock adjustments).
int64_t NowSteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SnapshotManager::SnapshotManager(SnapshotManagerOptions options)
    : options_(std::move(options)) {
  RegisterMetrics();
}

void SnapshotManager::RegisterMetrics() {
  obs::MetricRegistry* reg = options_.registry != nullptr
                                 ? options_.registry
                                 : &obs::MetricRegistry::Default();
  callbacks_.Attach(reg);
  const obs::Labels svc{{"service", options_.obs_label}};
  c_wal_appends_ = reg->GetCounter("s3_wal_appends_total",
                                   "Delta records appended to the WAL.", svc);
  c_wal_append_bytes_ = reg->GetCounter(
      "s3_wal_append_bytes_total", "Bytes appended to the WAL.", svc);
  c_checkpoints_ = reg->GetCounter("s3_checkpoints_total",
                                   "Checkpoints completed.", svc);
  h_wal_append_ = reg->GetHistogram(
      "s3_wal_append_seconds",
      "WAL append latency per delta (write + flush, + fsync if enabled).",
      svc);
  h_apply_ = reg->GetHistogram(
      "s3_apply_latency_seconds",
      "Delta arrival (LogAndApply entry) to successor-generation publish.",
      svc);
  h_checkpoint_ = reg->GetHistogram(
      "s3_checkpoint_seconds",
      "Checkpoint duration (serialize + snapshot write + WAL truncate).",
      svc);
  g_recovery_seconds_ = reg->GetGauge(
      "s3_recovery_seconds",
      "Duration of the last directory recovery (snapshot load + WAL "
      "replay); 0 for a fresh directory.",
      svc);
  callbacks_.Add(
      "s3_freshness_lag_seconds",
      "Age of the newest published generation: seconds since "
      "LogAndApply/Initialize last published (0 = nothing published).",
      obs::MetricKind::kGauge, svc,
      [this] { return FreshnessLagSeconds(); });
}

double SnapshotManager::FreshnessLagSeconds() const {
  const int64_t stamp = last_publish_ns_.load(std::memory_order_relaxed);
  if (stamp == 0) return 0.0;
  return static_cast<double>(NowSteadyNanos() - stamp) * 1e-9;
}

std::string SnapshotManager::WalPath() const {
  return options_.dir + "/" + kWalFileName;
}

std::string SnapshotManager::SnapshotPath(uint64_t generation) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(generation),
                kSnapshotSuffix);
  return options_.dir + "/" + buf;
}

Result<std::unique_ptr<SnapshotManager>> SnapshotManager::Open(
    SnapshotManagerOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("storage directory must be set");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create storage directory " +
                            options.dir + ": " + ec.message());
  }

  std::unique_ptr<SnapshotManager> mgr(
      new SnapshotManager(std::move(options)));
  WallTimer recovery_timer;
  Result<RecoveredState> recovered = Recover(mgr->options_.dir);
  if (recovered.ok()) {
    mgr->g_recovery_seconds_->Set(recovery_timer.ElapsedSeconds());
    mgr->recovered_ = *recovered;
    mgr->current_ = std::move(recovered->instance);
    // recovered_ keeps only the counters: holding the boot-time
    // instance for the manager's lifetime would pin every structure
    // later COW generations replace.
    mgr->recovered_.instance.reset();
  } else if (recovered.status().code() != StatusCode::kNotFound) {
    // Snapshots exist but none validates: refuse to silently start
    // empty over (possibly recoverable-by-hand) state.
    return recovered.status();
  }

  {
    std::lock_guard<std::mutex> lock(mgr->mu_);
    S3_RETURN_IF_ERROR(mgr->OpenWalLocked());
  }
  if (mgr->has_state() &&
      (mgr->recovered_.replayed_records > 0 ||
       mgr->recovered_.skipped_records > 0 ||
       mgr->recovered_.tail_discarded)) {
    // Fold the replayed WAL into a fresh snapshot so the log restarts
    // clean (this is also what drops a torn tail from disk).
    S3_RETURN_IF_ERROR(mgr->CheckpointSnapshot(mgr->current()));
  }
  if (mgr->options_.background_checkpoints &&
      mgr->options_.checkpoint_every > 0) {
    mgr->worker_ = std::thread([m = mgr.get()] { m->WorkerLoop(); });
  }
  return mgr;
}

SnapshotManager::~SnapshotManager() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) std::fclose(wal_);
}

std::shared_ptr<const core::S3Instance> SnapshotManager::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Status SnapshotManager::OpenWalLocked() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
  wal_ = std::fopen(WalPath().c_str(), "ab");
  if (wal_ == nullptr) {
    return Status::Internal("cannot open WAL at " + WalPath());
  }
  std::error_code ec;
  const uintmax_t size = fs::file_size(WalPath(), ec);
  if (ec) {
    // Claiming a zero-byte good prefix here would let a later append
    // failure truncate acknowledged records away; refuse instead.
    std::fclose(wal_);
    wal_ = nullptr;
    return Status::Internal("cannot stat WAL at " + WalPath() + ": " +
                            ec.message());
  }
  wal_good_bytes_ = static_cast<uint64_t>(size);
  return Status::OK();
}

void SnapshotManager::RepairWalLocked() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
  // Drop whatever the failed append left behind: a torn frame would
  // otherwise strand every later (acknowledged) record behind it at
  // recovery, and a *complete* but unacknowledged record would replay
  // a delta the caller was told failed.
  std::error_code ec;
  fs::resize_file(WalPath(), wal_good_bytes_, ec);
  if (ec || !OpenWalLocked().ok()) {
    // Cannot restore the boundary: refuse appends until a checkpoint
    // replaces the log wholesale (atomic tmp+rename).
    wal_poisoned_ = true;
  }
}

Result<RecoveredState> SnapshotManager::Recover(const std::string& dir) {
  // error_code overloads throughout: a Status-returning API must not
  // leak filesystem_error on an unreadable directory.
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) {
    return Status::NotFound("no storage directory at " + dir);
  }

  std::vector<std::pair<uint64_t, std::string>> snapshots;
  fs::directory_iterator it(dir, ec), end;
  if (ec) {
    return Status::Internal("cannot list " + dir + ": " + ec.message());
  }
  while (it != end) {
    uint64_t generation = 0;
    if (ParseSnapshotName(it->path().filename().string(), &generation)) {
      snapshots.emplace_back(generation, it->path().string());
    }
    it.increment(ec);
    if (ec) {
      return Status::Internal("cannot list " + dir + ": " + ec.message());
    }
  }
  if (snapshots.empty()) {
    return Status::NotFound("no snapshots in " + dir);
  }
  std::sort(snapshots.rbegin(), snapshots.rend());

  // Newest snapshot that passes framing, checksum and structural
  // validation wins; older ones are the fallback when a checkpoint was
  // torn mid-write *and* somehow renamed (defense in depth — the
  // tmp+rename protocol should make that impossible).
  RecoveredState state;
  std::string last_error = "?";
  for (const auto& [generation, path] : snapshots) {
    // mmap + attach instead of read + copy: v2 snapshots hand their
    // aligned sections (matrix CSR floats, component forest) to the
    // instance as zero-copy views pinning the mapping, so recovery
    // cost is decode-the-compact-sections, not copy-the-file. v1
    // snapshots go down the same call and load via the copy path.
    std::shared_ptr<const MappedRegion> region;
    Status mapped = MappedRegion::Open(path, &region);
    if (!mapped.ok()) {
      last_error = mapped.ToString();
      continue;
    }
    auto loaded = core::AttachBinarySnapshot(region);
    if (!loaded.ok()) {
      last_error = path + ": " + loaded.status().ToString();
      continue;
    }
    if ((*loaded)->generation() != generation) {
      last_error = path + ": generation does not match file name";
      continue;
    }
    state.instance = std::move(*loaded);
    state.snapshot_generation = generation;
    break;
  }
  if (state.instance == nullptr) {
    return Status::InvalidArgument("no valid snapshot in " + dir +
                                   " (last error: " + last_error + ")");
  }

  // Replay the WAL tail: records the snapshot covers are skipped,
  // records for the current generation apply in order, and the first
  // anomaly — torn frame, corrupt payload, foreign lineage, generation
  // gap — ends replay (everything before it is durable state). Only a
  // *missing* WAL means "nothing to replay": serving the bare snapshot
  // past a transient read error would fork the directory's history
  // (new appends behind unseen acknowledged records).
  std::string wal;
  Status wal_read = ReadFileToString(dir + "/" + kWalFileName, &wal);
  if (!wal_read.ok() && wal_read.code() != StatusCode::kNotFound) {
    return wal_read;
  }
  if (wal_read.ok()) {
    size_t pos = 0;
    while (pos < wal.size()) {
      std::string_view rest = std::string_view(wal).substr(pos);
      auto info = core::InstanceDelta::PeekWalRecord(rest);
      if (!info.ok()) {
        state.tail_discarded = true;
        break;
      }
      if (info->base_lineage != state.instance->lineage() ||
          info->base_generation > state.instance->generation()) {
        state.tail_discarded = true;
        break;
      }
      if (info->base_generation < state.instance->generation()) {
        ++state.skipped_records;
        pos += info->record_bytes;
        continue;
      }
      size_t consumed = 0;
      auto delta = core::InstanceDelta::DecodeWalRecord(rest, &consumed,
                                                        state.instance);
      if (!delta.ok()) {
        state.tail_discarded = true;
        break;
      }
      auto next = state.instance->ApplyDelta(*delta);
      if (!next.ok()) {
        state.tail_discarded = true;
        break;
      }
      state.instance = std::move(*next);
      ++state.replayed_records;
      pos += consumed;
    }
  }
  return state;
}

Status SnapshotManager::Initialize(
    std::shared_ptr<const core::S3Instance> snapshot) {
  if (snapshot == nullptr || !snapshot->finalized()) {
    return Status::InvalidArgument(
        "Initialize requires a finalized snapshot");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_ != nullptr) {
      return Status::FailedPrecondition(
          "storage directory already holds state (generation " +
          std::to_string(current_->generation()) + ")");
    }
    // A stray wal.log in a snapshot-less directory is foreign by
    // definition — and cannot be trusted to carry a *different*
    // lineage (tokens could collide across processes), so the
    // checkpoint's lineage filter is not enough: wipe it outright
    // before the first record of this lineage lands.
    if (wal_ != nullptr) {
      std::fclose(wal_);
      wal_ = nullptr;
    }
    S3_RETURN_IF_ERROR(WriteFileAtomic(WalPath(), ""));
    S3_RETURN_IF_ERROR(OpenWalLocked());
  }
  S3_RETURN_IF_ERROR(CheckpointSnapshot(snapshot));
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(snapshot);
  last_publish_ns_.store(NowSteadyNanos(), std::memory_order_relaxed);
  return Status::OK();
}

Result<std::shared_ptr<const core::S3Instance>> SnapshotManager::LogAndApply(
    const core::InstanceDelta& delta) {
  // Delta arrival stamp: s3_apply_latency_seconds measures from here
  // to the successor publish, the per-delta half of the freshness-lag
  // story (the gauge covers inter-delta gaps).
  WallTimer arrival_timer;
  std::string record;
  delta.EncodeWalRecord(&record);

  std::shared_ptr<const core::S3Instance> published;
  bool trigger_checkpoint = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_ == nullptr) {
      return Status::FailedPrecondition(
          "no durable state; Initialize the directory first");
    }
    if (delta.base().get() != current_.get()) {
      return Status::InvalidArgument(
          "delta must be built against the current generation " +
          std::to_string(current_->generation()));
    }
    auto next = current_->ApplyDelta(delta);
    if (!next.ok()) return next.status();

    // Durability before visibility: the record reaches the OS before
    // the successor generation can be observed (and acknowledged).
    if (wal_poisoned_) {
      return Status::Internal(
          "WAL at " + WalPath() +
          " is poisoned after a failed append repair; run Checkpoint()");
    }
    if (wal_ == nullptr) S3_RETURN_IF_ERROR(OpenWalLocked());
    WallTimer append_timer;
    const bool appended =
        std::fwrite(record.data(), 1, record.size(), wal_) ==
            record.size() &&
        std::fflush(wal_) == 0 &&
        (!options_.fsync_appends || ::fsync(::fileno(wal_)) == 0);
    if (!appended) {
      RepairWalLocked();
      return Status::Internal("WAL append failed at " + WalPath());
    }
    h_wal_append_->Observe(append_timer.ElapsedSeconds());
    c_wal_appends_->Inc();
    c_wal_append_bytes_->Inc(record.size());
    wal_good_bytes_ += record.size();

    current_ = std::move(*next);
    published = current_;
    last_publish_ns_.store(NowSteadyNanos(), std::memory_order_relaxed);
    h_apply_->Observe(arrival_timer.ElapsedSeconds());
    ++deltas_since_checkpoint_;
    trigger_checkpoint = options_.checkpoint_every > 0 &&
                         deltas_since_checkpoint_ >=
                             options_.checkpoint_every;
  }

  if (trigger_checkpoint) {
    if (options_.background_checkpoints) {
      SignalCheckpoint();
    } else {
      // The update itself is committed (record durable, successor
      // published); a checkpoint failure must not masquerade as an
      // apply failure. Report it where background failures land.
      Status status = Checkpoint();
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_last_status_ = std::move(status);
    }
  }
  return published;
}

Status SnapshotManager::Checkpoint() {
  std::shared_ptr<const core::S3Instance> snapshot = current();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("nothing to checkpoint");
  }
  return CheckpointSnapshot(snapshot);
}

Status SnapshotManager::CheckpointSnapshot(
    const std::shared_ptr<const core::S3Instance>& snapshot) {
  std::lock_guard<std::mutex> cp_lock(checkpoint_mu_);
  WallTimer checkpoint_timer;
  const uint64_t generation = snapshot->generation();

  // Serialization and the snapshot-file write run without mu_: appends
  // and applies proceed concurrently, and any record they add is for a
  // generation >= `generation`, which the truncation below keeps.
  Result<std::string> bytes = core::SaveBinarySnapshot(*snapshot);
  if (!bytes.ok()) return bytes.status();
  S3_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(generation), *bytes));

  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string wal;
    Status wal_read = ReadFileToString(WalPath(), &wal);
    if (!wal_read.ok() && wal_read.code() != StatusCode::kNotFound) {
      // Truncating on a partial read would drop records >= generation
      // that the read failed to see; keep the log as-is — the new
      // snapshot file alone is still a valid (longer-replay) state.
      return wal_read;
    }
    if (wal_ != nullptr) {
      std::fclose(wal_);
      wal_ = nullptr;
    }
    auto [kept, kept_records] =
        FilterWal(wal, snapshot->lineage(), generation);
    S3_RETURN_IF_ERROR(WriteFileAtomic(WalPath(), kept));
    S3_RETURN_IF_ERROR(OpenWalLocked());
    // The atomic rewrite restored a clean record boundary.
    wal_poisoned_ = false;
    deltas_since_checkpoint_ = kept_records;
  }

  // The new checkpoint makes older snapshots unreachable; reclaim them
  // (best-effort: error_code overloads, a leftover file only wastes
  // disk until the next checkpoint).
  std::error_code ec;
  fs::directory_iterator it(options_.dir, ec), end;
  while (!ec && it != end) {
    uint64_t file_generation = 0;
    if (ParseSnapshotName(it->path().filename().string(),
                          &file_generation) &&
        file_generation < generation) {
      std::error_code remove_ec;
      fs::remove(it->path(), remove_ec);
    }
    it.increment(ec);
  }
  c_checkpoints_->Inc();
  h_checkpoint_->Observe(checkpoint_timer.ElapsedSeconds());
  return Status::OK();
}

void SnapshotManager::SignalCheckpoint() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_pending_ = true;
  }
  bg_cv_.notify_all();
}

void SnapshotManager::WorkerLoop() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  for (;;) {
    bg_cv_.wait(lock, [this] { return bg_pending_ || bg_stop_; });
    if (!bg_pending_) break;  // stop requested, nothing queued
    bg_pending_ = false;
    bg_running_ = true;
    lock.unlock();
    Status status = Checkpoint();
    lock.lock();
    bg_running_ = false;
    bg_last_status_ = std::move(status);
    bg_cv_.notify_all();
    if (bg_stop_ && !bg_pending_) break;
  }
}

Status SnapshotManager::WaitForCheckpoints() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_cv_.wait(lock, [this] { return !bg_pending_ && !bg_running_; });
  return bg_last_status_;
}

Result<ServerBootstrap> RecoverAndServe(SnapshotManagerOptions storage,
                                        QueryServiceOptions serving) {
  Result<std::unique_ptr<SnapshotManager>> manager =
      SnapshotManager::Open(std::move(storage));
  if (!manager.ok()) return manager.status();
  if (!(*manager)->has_state()) {
    return Status::FailedPrecondition(
        "storage directory holds no state; build an instance and "
        "Initialize it before serving");
  }
  ServerBootstrap out;
  out.manager = std::move(*manager);
  out.service = std::make_unique<QueryService>(out.manager->current(),
                                               serving);
  return out;
}

}  // namespace s3::server
