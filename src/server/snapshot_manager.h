// SnapshotManager: the durable side of the serving stack.
//
// One manager owns a storage directory holding
//
//   snapshot-<generation>.s3snap   binary snapshots (core/snapshot_binary)
//   wal.log                        delta write-ahead log (self-delimiting
//                                  InstanceDelta records)
//
// and maintains the invariant that *directory contents alone*
// reconstruct the exact serving state: every applied delta is appended
// to the WAL before its successor generation is published
// (LogAndApply), and a checkpoint at generation G writes snapshot-G
// and truncates the records G already covers. Recover(dir) loads the
// newest snapshot that passes checksum validation and replays the WAL
// tail on top, so a killed process resumes at its precise pre-crash
// generation — same lineage token, same query results, bit for bit.
//
// Crash semantics: files are written tmp-then-rename (atomic on
// POSIX); a torn WAL tail (crash mid-append) or a corrupt record stops
// replay at the last durable generation and the junk is discarded on
// the next Open. A delta whose append never completed was never
// acknowledged, so dropping it is correct.
//
// Checkpoints run synchronously (Checkpoint()) or on the manager's
// background thread (options.checkpoint_every + background_checkpoints;
// LogAndApply only signals the worker). A checkpoint serializes the
// captured snapshot outside the manager lock — appends and applies
// continue concurrently; only the WAL truncation itself excludes
// appenders for the duration of a filtered rewrite.
//
// Startup wiring: RecoverAndServe(dir options, service options)
// recovers the directory and hands the instance to a QueryService, the
// one-call path from cold storage to serving traffic.
#ifndef S3_SERVER_SNAPSHOT_MANAGER_H_
#define S3_SERVER_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "core/instance_delta.h"
#include "core/s3_instance.h"
#include "obs/metrics.h"
#include "server/query_service.h"

namespace s3::server {

struct SnapshotManagerOptions {
  std::string dir;
  // Auto-checkpoint after this many deltas logged since the last
  // checkpoint; 0 disables auto checkpoints (Checkpoint() stays
  // available).
  uint64_t checkpoint_every = 0;
  // Run auto checkpoints on the manager's background thread. When
  // false they run inline in the LogAndApply that crossed the
  // threshold (deterministic; used by tests and tools).
  bool background_checkpoints = true;
  // fsync the WAL file after every append. Off by default: the stream
  // is always flushed to the OS per append (process-crash durable);
  // fsync extends that to power loss at a large per-delta cost.
  bool fsync_appends = false;
  // ---- observability (src/obs) ----
  // Registry for this manager's metric series (nullptr = process
  // default) and the {service="..."} label on them — match the
  // QueryService serving this directory so the write and read paths of
  // one deployment line up in dumps.
  obs::MetricRegistry* registry = nullptr;
  std::string obs_label = "primary";
};

// What Recover found in a directory.
struct RecoveredState {
  // Set by the static Recover(); SnapshotManager::recovered() clears
  // it (the manager serves via current() — pinning the boot-time
  // generation for the manager's lifetime would defeat the COW
  // reclamation of superseded structures).
  std::shared_ptr<const core::S3Instance> instance;
  uint64_t snapshot_generation = 0;  // generation of the loaded snapshot
  size_t replayed_records = 0;       // WAL records applied on top
  size_t skipped_records = 0;        // records the snapshot already covered
  // True when replay stopped early: torn tail, corrupt record, foreign
  // lineage or a generation gap. Everything up to that point is state.
  bool tail_discarded = false;
};

class SnapshotManager {
 public:
  // Opens (creating if needed) a storage directory and recovers any
  // state in it; has_state() reports whether there was any. A
  // recovered WAL is compacted away by an immediate checkpoint so the
  // append stream starts clean after a crash.
  static Result<std::unique_ptr<SnapshotManager>> Open(
      SnapshotManagerOptions options);

  ~SnapshotManager();
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // Pure recovery of a directory's state — no manager needed (used by
  // Open and by the s3_snapshot tool). NotFound when the directory
  // holds no snapshot; InvalidArgument when snapshots exist but none
  // validates.
  static Result<RecoveredState> Recover(const std::string& dir);

  // Null until Initialize (fresh directory) or after Open of a
  // directory with state.
  std::shared_ptr<const core::S3Instance> current() const;
  bool has_state() const { return current() != nullptr; }

  // What Open's recovery found (all zeros for a fresh directory).
  const RecoveredState& recovered() const { return recovered_; }

  // First-time setup of an empty directory: wipes any stray WAL (a
  // log without a snapshot is foreign by definition) and checkpoints
  // `snapshot` as the initial durable generation. FailedPrecondition
  // if the manager already has state.
  Status Initialize(std::shared_ptr<const core::S3Instance> snapshot);

  // The durable update path: appends `delta` (which must be built
  // against current()) to the WAL, applies it, publishes and returns
  // the successor generation. The record is flushed before the
  // successor is visible, so an acknowledged generation is always
  // recoverable; a failed append is truncated back out of the log
  // (and the log is poisoned against further appends if even that
  // fails), so a torn write can never strand later acknowledged
  // records behind it. Triggers an auto checkpoint per options —
  // whose own failure is reported via WaitForCheckpoints, never here:
  // once the record is durable and the successor published, the
  // update has succeeded regardless of checkpointing.
  Result<std::shared_ptr<const core::S3Instance>> LogAndApply(
      const core::InstanceDelta& delta);

  // Synchronous checkpoint of current(): writes snapshot-G, truncates
  // WAL records below G, deletes older snapshot files. Also the
  // recovery path for a poisoned WAL (the rewrite is atomic).
  Status Checkpoint();

  // Blocks until no background checkpoint is pending or running;
  // returns the status of the most recent *auto* checkpoint
  // (background or inline) that completed.
  Status WaitForCheckpoints();

  // Generation-freshness lag: seconds since the newest generation was
  // published by LogAndApply/Initialize (the age of the servable
  // state). 0 before anything was published. Also exported as the
  // s3_freshness_lag_seconds gauge — this is the streaming-feed
  // workload's staleness signal (ROADMAP item 5).
  double FreshnessLagSeconds() const;

 private:
  explicit SnapshotManager(SnapshotManagerOptions options);

  std::string WalPath() const;
  std::string SnapshotPath(uint64_t generation) const;

  // Opens (or re-opens) the WAL append handle. Caller holds mu_.
  Status OpenWalLocked();
  // Serializes `snapshot` to snapshot-<gen> (tmp + rename) and rewrites
  // the WAL keeping only records at or above `gen`. Serialization runs
  // without locks; the WAL rewrite takes mu_.
  Status CheckpointSnapshot(
      const std::shared_ptr<const core::S3Instance>& snapshot);

  void WorkerLoop();
  void SignalCheckpoint();

  const SnapshotManagerOptions options_;

  // Drops torn bytes of a failed append (truncate back to
  // wal_good_bytes_ and reopen); poisons the log when the truncation
  // itself fails. Caller holds mu_.
  void RepairWalLocked();

  // Guards current_, the WAL handle/bookkeeping and
  // deltas_since_checkpoint_.
  mutable std::mutex mu_;
  std::shared_ptr<const core::S3Instance> current_;
  std::FILE* wal_ = nullptr;
  // Bytes of wal.log known to end on a record boundary (advanced per
  // successful append, reset by truncation).
  uint64_t wal_good_bytes_ = 0;
  // Set when a torn append could not be truncated away: appends are
  // refused until a checkpoint rewrites the log atomically.
  bool wal_poisoned_ = false;
  uint64_t deltas_since_checkpoint_ = 0;

  // Serializes whole checkpoints against each other (manual vs
  // background); never held together with mu_ writes longer than the
  // WAL rewrite.
  std::mutex checkpoint_mu_;

  RecoveredState recovered_;

  // Background checkpoint worker.
  std::thread worker_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  bool bg_pending_ = false;
  bool bg_running_ = false;
  Status bg_last_status_;

  // ---- observability (no-ops under -DS3_OBS=OFF). Counters and
  // histograms are registry-owned handles written on the durable
  // paths; the freshness-lag gauge is a callback over
  // last_publish_ns_.
  void RegisterMetrics();
  // steady_clock nanos of the newest published generation (0 = none).
  std::atomic<int64_t> last_publish_ns_{0};
  obs::Counter* c_wal_appends_ = nullptr;
  obs::Counter* c_wal_append_bytes_ = nullptr;
  obs::Counter* c_checkpoints_ = nullptr;
  obs::Histogram* h_wal_append_ = nullptr;
  obs::Histogram* h_apply_ = nullptr;
  obs::Histogram* h_checkpoint_ = nullptr;
  obs::Gauge* g_recovery_seconds_ = nullptr;
  obs::CallbackSet callbacks_;
};

// Cold-start wiring: recover `storage.dir` and serve it. Fails with
// NotFound/InvalidArgument from recovery, or FailedPrecondition when
// the directory is empty (a fresh deployment must Initialize first).
struct ServerBootstrap {
  std::unique_ptr<SnapshotManager> manager;
  std::unique_ptr<QueryService> service;
};
Result<ServerBootstrap> RecoverAndServe(SnapshotManagerOptions storage,
                                        QueryServiceOptions serving);

}  // namespace s3::server

#endif  // S3_SERVER_SNAPSHOT_MANAGER_H_
