#include "server/proximity_cache.h"

#include <algorithm>

namespace s3::server {

PlanCacheKey MakePlanKey(std::vector<KeywordId> keywords,
                         bool use_semantics, double eta) {
  PlanCacheKey key;
  std::sort(keywords.begin(), keywords.end());
  key.keywords = std::move(keywords);
  key.use_semantics = use_semantics;
  key.eta = eta;
  return key;
}

ProximityCache::ProximityCache(size_t shards, size_t capacity_per_shard) {
  if (shards < 1) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(capacity_per_shard));
  }
}

std::shared_ptr<const core::CandidatePlan> ProximityCache::Lookup(
    const PlanCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const core::CandidatePlan> out;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto* found = shard.lru.Get(key)) out = *found;
  }
  if (out != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

void ProximityCache::Insert(
    const PlanCacheKey& key,
    std::shared_ptr<const core::CandidatePlan> plan) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.Put(key, std::move(plan));
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

ProximityCacheStats ProximityCache::Stats() const {
  ProximityCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.evictions += shard->lru.evictions();
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace s3::server
