#include "server/proximity_cache.h"

#include <algorithm>

namespace s3::server {

PlanCacheKey MakePlanKey(std::vector<KeywordId> keywords,
                         bool use_semantics, double eta,
                         uint64_t generation) {
  PlanCacheKey key;
  std::sort(keywords.begin(), keywords.end());
  key.keywords = std::move(keywords);
  key.use_semantics = use_semantics;
  key.eta = eta;
  key.generation = generation;
  return key;
}

ProximityCache::ProximityCache(size_t shards, size_t capacity_per_shard) {
  if (shards < 1) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(capacity_per_shard));
  }
}

std::shared_ptr<const core::CandidatePlan> ProximityCache::Lookup(
    const PlanCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const core::CandidatePlan> out;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto* found = shard.lru.Get(key)) out = *found;
  }
  if (out != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

void ProximityCache::Insert(
    const PlanCacheKey& key,
    std::shared_ptr<const core::CandidatePlan> plan) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Purge floor, checked under the shard lock: a worker that missed
    // on generation g before a swap purged g may finish its build
    // afterwards — admitting the entry would strand an unreachable
    // plan in the LRU (and let it evict live ones) until the next
    // swap. The purge raises the floor *before* sweeping the shards,
    // so a lock-ordered insert either observes the raised floor here
    // or lands before the sweep and gets swept.
    if (key.generation <
        min_generation_.load(std::memory_order_acquire)) {
      return;
    }
    shard.lru.Put(key, std::move(plan));
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

size_t ProximityCache::PurgeGenerationsBelow(uint64_t current) {
  // Raise the insert floor first so a concurrent plan build racing
  // this purge cannot re-admit a stale entry after its shard was
  // swept.
  uint64_t floor = min_generation_.load(std::memory_order_relaxed);
  while (floor < current &&
         !min_generation_.compare_exchange_weak(
             floor, current, std::memory_order_acq_rel)) {
  }
  size_t purged = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    purged += shard->lru.EraseIf(
        [current](const PlanCacheKey& key,
                  const std::shared_ptr<const core::CandidatePlan>&) {
          return key.generation < current;
        });
  }
  purged_.fetch_add(purged, std::memory_order_relaxed);
  return purged;
}

ProximityCacheStats ProximityCache::Stats() const {
  ProximityCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.purged = purged_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.evictions += shard->lru.evictions();
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace s3::server
