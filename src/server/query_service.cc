#include "server/query_service.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

namespace s3::server {

namespace {

// True iff `keywords` is a permutation of the sorted multiset
// `sorted_ref` — i.e. both queries resolve to the same plan-cache key
// (use_semantics/eta are service-wide constants, and the batching
// worker binds one snapshot generation for the whole run). Runs under
// the queue lock: n <= 64 small ids, so the sort is noise next to a
// millisecond query.
bool SameKeywordMultiset(const std::vector<KeywordId>& keywords,
                         const std::vector<KeywordId>& sorted_ref) {
  if (keywords.size() != sorted_ref.size()) return false;
  std::vector<KeywordId> sorted = keywords;
  std::sort(sorted.begin(), sorted.end());
  return sorted == sorted_ref;
}

}  // namespace

QueryService::QueryService(std::shared_ptr<const core::S3Instance> snapshot,
                           QueryServiceOptions options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      queue_(options.queue_capacity),
      tracer_(options.trace) {
  if (options_.workers < 1) options_.workers = 1;
  intra_budget_ = options_.intra_thread_budget;
  if (intra_budget_ == 0) {  // auto
    intra_budget_ = std::thread::hardware_concurrency();
    if (intra_budget_ == 0) intra_budget_ = 1;
  }
  if (options_.enable_cache) {
    cache_ = std::make_unique<ProximityCache>(
        options_.cache_shards, options_.cache_capacity_per_shard);
  }
  // Value-initialized (zeroed) per-worker busy-time slots; the metric
  // callbacks read them, so allocate before RegisterMetrics().
  worker_busy_seconds_ =
      std::make_unique<std::atomic<double>[]>(options_.workers);
  RegisterMetrics();
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void QueryService::RegisterMetrics() {
  obs::MetricRegistry* reg = options_.registry != nullptr
                                 ? options_.registry
                                 : &obs::MetricRegistry::Default();
  obs::RegisterProcessMetrics(reg);
  callbacks_.Attach(reg);
  const obs::Labels svc{{"service", options_.obs_label}};
  h_queue_wait_ = reg->GetHistogram(
      "s3_query_queue_seconds", "Admission-to-dequeue wait per query.", svc);
  h_exec_ = reg->GetHistogram(
      "s3_query_exec_seconds",
      "Dequeue-to-completion execution time per query.", svc);
  h_total_ = reg->GetHistogram(
      "s3_query_total_seconds", "Admission-to-completion latency per query.",
      svc);
  h_batch_width_ = reg->GetHistogram(
      "s3_query_batch_width",
      "Queries answered per executed search pass (1 = unbatched).", svc,
      obs::BucketSpec::SmallCounts());

  // Counter/gauge views over the service's own atomics — the atomics
  // stay the single source of truth (QueryServiceStats reads the same
  // memory), the registry only renders them.
  auto view = [&](const char* name, const char* help,
                  const std::atomic<uint64_t>& src) {
    callbacks_.Add(name, help, obs::MetricKind::kCounter, svc, [&src] {
      return static_cast<double>(src.load(std::memory_order_relaxed));
    });
  };
  view("s3_queries_submitted_total", "Queries admitted into the queue.",
       submitted_);
  view("s3_queries_rejected_total",
       "Queue-full Unavailable refusals (load shed).", rejected_);
  view("s3_queries_completed_total", "Queries answered with a result.",
       completed_);
  view("s3_queries_failed_total", "Queries answered with an error status.",
       failed_);
  view("s3_batched_queries_total",
       "Queries answered inside a width >= 2 batch.", batched_queries_);
  view("s3_batches_executed_total", "Width >= 2 batch passes executed.",
       batches_executed_);
  view("s3_anytime_queries_total", "Completed kAnytime-mode queries.",
       anytime_queries_);
  view("s3_deadline_exceeded_total",
       "Completed queries whose search deadline expired.",
       deadline_exceeded_);
  for (size_t b = 0; b < eval::ServiceCounters::kEpsBuckets; ++b) {
    obs::Labels labels = svc;
    labels.emplace_back("bucket", eval::CertifiedEpsilonBucketLabel(b));
    callbacks_.Add("s3_query_certified_eps_total",
                   "Achieved certified-epsilon histogram over completed "
                   "queries (exact answers land in the leftmost bucket).",
                   obs::MetricKind::kCounter, std::move(labels),
                   [this, b] {
                     return static_cast<double>(
                         eps_hist_[b].load(std::memory_order_relaxed));
                   });
  }
  callbacks_.Add("s3_query_queue_depth",
                 "Admitted tasks waiting for a worker.",
                 obs::MetricKind::kGauge, svc, [this] {
                   return static_cast<double>(queue_.size());
                 });
  callbacks_.Add("s3_query_busy_workers",
                 "Workers currently executing a query.",
                 obs::MetricKind::kGauge, svc, [this] {
                   return static_cast<double>(
                       busy_workers_.load(std::memory_order_relaxed));
                 });
  for (unsigned i = 0; i < options_.workers; ++i) {
    obs::Labels labels = svc;
    labels.emplace_back("worker", std::to_string(i));
    callbacks_.Add("s3_worker_busy_seconds_total",
                   "Cumulative seconds this worker spent executing queries.",
                   obs::MetricKind::kCounter, std::move(labels), [this, i] {
                     return worker_busy_seconds_[i].load(
                         std::memory_order_relaxed);
                   });
  }
  if (cache_ != nullptr) {
    auto cache_view = [&](const char* name, const char* help,
                          obs::MetricKind kind,
                          uint64_t ProximityCacheStats::*field) {
      callbacks_.Add(name, help, kind, svc, [this, field] {
        return static_cast<double>(cache_->Stats().*field);
      });
    };
    cache_view("s3_plan_cache_hits_total",
               "Plans served from the proximity cache.",
               obs::MetricKind::kCounter, &ProximityCacheStats::hits);
    cache_view("s3_plan_cache_misses_total",
               "Plan lookups that missed (plan built).",
               obs::MetricKind::kCounter, &ProximityCacheStats::misses);
    cache_view("s3_plan_cache_insertions_total",
               "Plans inserted into the cache.", obs::MetricKind::kCounter,
               &ProximityCacheStats::insertions);
    cache_view("s3_plan_cache_evictions_total",
               "Plans evicted by LRU capacity pressure.",
               obs::MetricKind::kCounter, &ProximityCacheStats::evictions);
    cache_view("s3_plan_cache_purged_total",
               "Stale-generation plans purged after snapshot swaps.",
               obs::MetricKind::kCounter, &ProximityCacheStats::purged);
    callbacks_.Add("s3_plan_cache_entries", "Plans currently cached.",
                   obs::MetricKind::kGauge, svc, [this] {
                     return static_cast<double>(cache_->Stats().entries);
                   });
  }
  callbacks_.Add("s3_traces_sampled_total",
                 "Queries selected for detailed tracing.",
                 obs::MetricKind::kCounter, svc,
                 [this] { return static_cast<double>(tracer_.sampled_total()); });
  callbacks_.Add("s3_slow_queries_total",
                 "Completions at or above the slow-query threshold.",
                 obs::MetricKind::kCounter, svc,
                 [this] { return static_cast<double>(tracer_.slow_total()); });
}

QueryService::~QueryService() { Shutdown(); }

Status QueryService::ValidateQuery(const core::S3Instance& snapshot,
                                   const core::QueryRequest& query) const {
  if (!snapshot.finalized()) {
    return Status::FailedPrecondition("snapshot not finalized");
  }
  // Per-request overrides are untrusted caller input like everything
  // else: a NaN deadline or an epsilon outside kAnytime must fail at
  // admission, not surface from a worker mid-batch.
  S3_RETURN_IF_ERROR(query.options.Validate());
  if (query.seeker >= snapshot.UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  if (query.keywords.empty()) {
    return Status::InvalidArgument("empty keyword set");
  }
  if (query.keywords.size() > 64) {
    return Status::InvalidArgument("queries are limited to 64 keywords");
  }
  // Keyword *values* are untrusted caller input too: an out-of-range id
  // must not reach plan construction or index lookups. (Ids stay valid
  // across snapshot swaps because vocabularies only grow.)
  const size_t n_keywords = snapshot.vocabulary().size();
  for (KeywordId k : query.keywords) {
    if (k >= n_keywords) {
      return Status::InvalidArgument("unknown keyword id");
    }
  }
  return Status::OK();
}

Status QueryService::SwapSnapshot(
    std::shared_ptr<const core::S3Instance> next) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  if (next == nullptr || !next->finalized()) {
    return Status::InvalidArgument("snapshot must be finalized");
  }
  const uint64_t generation = next->generation();
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    // Generations must grow monotonically: the cache keys plans by
    // generation number, so publishing an unrelated snapshot that
    // reuses a number (e.g. a freshly built generation-0 instance)
    // would let stale plans — with row ids of a different instance —
    // hit against it. It also serializes concurrent swappers: the
    // loser of a race surfaces here instead of silently discarding
    // the winner's delta. Serving an unrelated instance means a new
    // QueryService.
    if (generation <= snapshot_->generation()) {
      return Status::InvalidArgument(
          "snapshot generation must exceed the current generation " +
          std::to_string(snapshot_->generation()) +
          " (got " + std::to_string(generation) + ")");
    }
    // Generation numbers are only comparable within one ApplyDelta
    // lineage: an unrelated instance may have smaller id spaces than
    // the one queries were validated against.
    if (next->lineage() != snapshot_->lineage()) {
      return Status::InvalidArgument(
          "snapshot belongs to a different lineage; serve an unrelated "
          "instance with a new QueryService");
    }
    snapshot_ = std::move(next);
  }
  // Stale-generation plans can never be looked up again (keys carry
  // the generation); reclaim their memory without touching
  // current-generation entries.
  if (cache_ != nullptr) cache_->PurgeGenerationsBelow(generation);
  return Status::OK();
}

Result<QueryFuture> QueryService::Admit(core::QueryRequest query,
                                        bool blocking) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  {
    auto snap = snapshot();
    S3_RETURN_IF_ERROR(ValidateQuery(*snap, query));
  }

  Task task;
  task.query = std::move(query);
  QueryFuture future = task.promise.get_future();
  // Count the admission *before* publishing the task: a fast worker
  // may complete it the instant it is queued, and completed > submitted
  // must never be observable. Undone on refusal.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const bool admitted =
      blocking ? queue_.Push(std::move(task)) : queue_.TryPush(std::move(task));
  if (!admitted) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    if (queue_.closed()) {
      // Shutdown refusal, not load shedding — don't count it as an
      // admission-control rejection.
      return Status::FailedPrecondition("service is shut down");
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("admission queue full");
  }
  return future;
}

Result<QueryFuture> QueryService::Submit(core::QueryRequest query) {
  return Admit(std::move(query), /*blocking=*/false);
}

Result<QueryFuture> QueryService::SubmitBlocking(core::QueryRequest query) {
  return Admit(std::move(query), /*blocking=*/true);
}

void QueryService::RecordOutcome(const core::QueryRequest& query,
                                 const core::SearchStats& stats) {
  if (query.options.mode == core::QueryMode::kAnytime) {
    anytime_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  if (stats.deadline_exceeded) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  eps_hist_[eval::CertifiedEpsilonBucket(stats.certified_epsilon)].fetch_add(
      1, std::memory_order_relaxed);
}

Result<std::shared_ptr<const core::CandidatePlan>> QueryService::ResolvePlan(
    const core::S3Instance& snapshot, const core::QueryRequest& query,
    ThreadPool* pool, bool* cache_hit) {
  *cache_hit = false;
  const bool use_semantics = options_.search.use_semantics;
  const double eta = options_.search.score.eta;
  if (cache_ == nullptr) {
    auto built = core::BuildCandidatePlan(snapshot, query.keywords,
                                          use_semantics, eta, pool);
    if (!built.ok()) return built.status();
    return std::make_shared<const core::CandidatePlan>(std::move(*built));
  }

  PlanCacheKey key = MakePlanKey(query.keywords, use_semantics, eta,
                                 snapshot.generation());
  if (auto plan = cache_->Lookup(key)) {
    *cache_hit = true;
    return plan;
  }
  // Miss: build from the canonical (sorted) keyword order, so the plan
  // serves every permutation of this multiset. Concurrent misses on
  // the same key may build twice; last insert wins and both plans are
  // equivalent, so no cross-worker build lock is needed.
  auto built = core::BuildCandidatePlan(snapshot, key.keywords,
                                        use_semantics, eta, pool);
  if (!built.ok()) return built.status();
  auto plan =
      std::make_shared<const core::CandidatePlan>(std::move(*built));
  cache_->Insert(key, plan);
  return plan;
}

void QueryService::WorkerLoop(unsigned worker_index) {
  // The pooled searcher: one per worker, reused for every query the
  // worker answers (scratch state persists across queries) and rebuilt
  // only when a SwapSnapshot publishes a new generation. The worker's
  // shared_ptr keeps its generation alive until it rebinds.
  std::shared_ptr<const core::S3Instance> bound;
  std::optional<core::S3kSearcher> searcher;
  // Each worker's searcher resolves `threads = 0` to the service-wide
  // intra-query budget; the per-query thread *limit* below then divides
  // that budget among the workers actually busy right now.
  core::S3kOptions search_opts = options_.search;
  if (search_opts.threads == 0) search_opts.threads = intra_budget_;

  while (auto popped = queue_.Pop()) {
    // Busy-worker accounting brackets the whole task (the guard
    // decrements on every exit path, error continues included): the
    // instantaneous busy count is the divisor of each query's share of
    // the machine's thread budget.
    const unsigned busy =
        busy_workers_.fetch_add(1, std::memory_order_relaxed) + 1;
    struct BusyGuard {
      std::atomic<unsigned>& counter;
      std::atomic<double>& busy_seconds;
      WallTimer timer;  // started at dequeue
      ~BusyGuard() {
        // Per-worker utilization accounting covers every exit path
        // (error continues included), like the busy count itself.
        busy_seconds.fetch_add(timer.ElapsedSeconds(),
                               std::memory_order_relaxed);
        counter.fetch_sub(1, std::memory_order_relaxed);
      }
    } busy_guard{busy_workers_, worker_busy_seconds_[worker_index]};

    Task& task = *popped;
    QueryResponse response;
    response.queue_seconds = task.timer.ElapsedSeconds();
    h_queue_wait_->Observe(response.queue_seconds);
    // Trace sampling is decided before the query runs: a sampled query
    // carries the engine-side trace flag (per-iteration records) and
    // gets a QueryTrace built at completion; a sampled-out query pays
    // one relaxed fetch_add here and allocates nothing. The flag never
    // affects the result (engine tracing is read-only).
    const uint64_t query_id = trace_ids_.fetch_add(1, std::memory_order_relaxed);
    const bool sampled = tracer_.ShouldSample();
    if (sampled) task.query.options.trace = true;

    // Bind one snapshot for the whole query: snapshot, plan and
    // searcher all come from this generation, even if a swap lands
    // mid-query.
    auto current = snapshot();
    if (current != bound) {
      searcher.reset();
      bound = std::move(current);
      searcher.emplace(*bound, search_opts);
    }
    response.generation = bound->generation();
    // This query's share of the intra-query thread budget. An idle
    // service hands a solo query the whole budget; a loaded one clamps
    // every query toward 1 (results are bit-for-bit identical at any
    // limit, so the clamp is purely a scheduling decision).
    searcher->set_thread_limit(std::max(1u, intra_budget_ / busy));

    auto plan = ResolvePlan(*bound, task.query, searcher->intra_pool(),
                            &response.cache_hit);
    if (!plan.ok()) {
      failed_.fetch_add(1, std::memory_order_release);
      task.promise.set_value(plan.status());
      continue;
    }

    // Multi-seeker batching: with the head's plan resolved, drain up
    // to batch_window - 1 queued queries over the same keyword
    // multiset (⇒ same plan: use_semantics/eta are service-wide and
    // the snapshot is bound once above — a batch can never span a
    // SwapSnapshot generation). Per-request options are *not* part of
    // the compatibility check: k/epsilon/deadline/mode ride as
    // per-lane BatchSeeker parameters, so an anytime request batches
    // with exact ones without perturbing them. Only consecutive
    // head-of-queue matches are taken, so non-matching queries are
    // never reordered past.
    std::vector<Task> followers;
    std::vector<double> follower_queue_secs;  // stamped at drain time
    const size_t window =
        std::min(options_.batch_window, core::S3kSearcher::kMaxBatch);
    if (window > 1) {
      std::vector<KeywordId> sorted_ref = task.query.keywords;
      std::sort(sorted_ref.begin(), sorted_ref.end());
      while (followers.size() + 1 < window) {
        auto more = queue_.TryPopIf([&](const Task& t) {
          return SameKeywordMultiset(t.query.keywords, sorted_ref);
        });
        if (!more) break;
        follower_queue_secs.push_back(more->timer.ElapsedSeconds());
        followers.push_back(std::move(*more));
      }
    }

    if (followers.empty()) {
      // Single-query pass (batching off, or no same-plan neighbor was
      // queued) — identical to the pre-batching serving path.
      auto result = searcher->SearchWithPlan(task.query, **plan,
                                             &response.stats);
      if (!result.ok()) {
        failed_.fetch_add(1, std::memory_order_release);
        task.promise.set_value(result.status());
        continue;
      }
      response.entries = std::move(*result);
      response.certified_epsilon = response.stats.certified_epsilon;
      response.deadline_exceeded = response.stats.deadline_exceeded;
      RecordOutcome(task.query, response.stats);
      response.total_seconds = task.timer.ElapsedSeconds();
      latency_.Add(response.total_seconds);
      h_exec_->Observe(response.total_seconds - response.queue_seconds);
      h_total_->Observe(response.total_seconds);
      h_batch_width_->Observe(1.0);
      FinishQueryObs(query_id, sampled, task.query, response,
                     /*batch_width=*/1);
      // Release-ordered so a Stats() snapshot that sees this
      // completion also sees the RecordOutcome increments and the
      // admission that preceded it (see Stats()).
      completed_.fetch_add(1, std::memory_order_release);
      task.promise.set_value(std::move(response));
      continue;
    }

    // Batched pass. Every member was validated at admission against a
    // snapshot of this lineage no newer than `bound` (user ids only
    // grow within a lineage), so per-member validation cannot fail
    // here; a batch error fails every member alike.
    std::vector<Task> tasks;
    tasks.reserve(followers.size() + 1);
    tasks.push_back(std::move(task));
    for (Task& f : followers) tasks.push_back(std::move(f));
    std::vector<core::BatchSeeker> batch(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      // Each member's QueryOptions become its lane parameters (k,
      // certificate, deadline) — resolved against the service search
      // defaults exactly like a solo SearchWithPlan would.
      batch[i] = core::ResolveLane(tasks[i].query, options_.search);
    }
    auto batched = searcher->SearchBatchWithPlan(batch, **plan);
    if (!batched.ok()) {
      failed_.fetch_add(tasks.size(), std::memory_order_release);
      for (Task& t : tasks) t.promise.set_value(batched.status());
      continue;
    }
    // Queries-then-passes, with the pass release-ordered: a Stats()
    // snapshot that sees a batch pass also sees all its member-query
    // increments (batched_queries >= 2 * batches_executed holds for
    // every snapshot).
    batched_queries_.fetch_add(tasks.size(), std::memory_order_relaxed);
    batches_executed_.fetch_add(1, std::memory_order_release);
    h_batch_width_->Observe(static_cast<double>(tasks.size()));
    for (size_t i = 0; i < tasks.size(); ++i) {
      QueryResponse r;
      r.generation = response.generation;
      // Followers ride the head's plan resolution: with the cache on,
      // a solo run would have hit the entry the head just ensured, so
      // report them as hits; with it off they are free riders either
      // way.
      r.cache_hit = i == 0 ? response.cache_hit : cache_ != nullptr;
      r.queue_seconds =
          i == 0 ? response.queue_seconds : follower_queue_secs[i - 1];
      r.entries = std::move((*batched)[i].entries);
      r.stats = std::move((*batched)[i].stats);
      r.certified_epsilon = r.stats.certified_epsilon;
      r.deadline_exceeded = r.stats.deadline_exceeded;
      RecordOutcome(tasks[i].query, r.stats);
      r.total_seconds = tasks[i].timer.ElapsedSeconds();
      latency_.Add(r.total_seconds);
      h_exec_->Observe(r.total_seconds - r.queue_seconds);
      h_total_->Observe(r.total_seconds);
      // Only the batch head can be the sampled query (the decision was
      // taken at its dequeue); followers still feed the slow log under
      // their own ids.
      FinishQueryObs(
          i == 0 ? query_id : trace_ids_.fetch_add(1, std::memory_order_relaxed),
          i == 0 && sampled, tasks[i].query, r, tasks.size());
      completed_.fetch_add(1, std::memory_order_release);
      tasks[i].promise.set_value(std::move(r));
    }
  }
}

void QueryService::FinishQueryObs(uint64_t query_id, bool sampled,
                                  const core::QueryRequest& query,
                                  const QueryResponse& response,
                                  size_t batch_width) {
  if constexpr (!obs::kEnabled) return;
  const auto label = [&] {
    return "seeker=" + std::to_string(query.seeker) + " kw=" +
           std::to_string(query.keywords.size()) +
           (query.options.mode == core::QueryMode::kAnytime ? " anytime"
                                                            : "");
  };
  // Always-on slow-log check: the entry is materialized only past the
  // threshold, so the fast path pays one comparison.
  tracer_.NoteCompletion(response.total_seconds, [&] {
    obs::SlowQueryEntry entry;
    entry.id = query_id;
    entry.label = label();
    entry.generation = response.generation;
    entry.cache_hit = response.cache_hit;
    entry.batched = batch_width > 1;
    entry.deadline_exceeded = response.deadline_exceeded;
    entry.certified_epsilon = response.certified_epsilon;
    entry.queue_seconds = response.queue_seconds;
    entry.exec_seconds = response.total_seconds - response.queue_seconds;
    entry.total_seconds = response.total_seconds;
    return entry;
  });
  if (!sampled) return;
  obs::QueryTrace trace;
  trace.id = query_id;
  trace.label = label();
  trace.generation = response.generation;
  trace.cache_hit = response.cache_hit;
  trace.batched = batch_width > 1;
  trace.batch_width = static_cast<uint32_t>(batch_width);
  trace.deadline_exceeded = response.deadline_exceeded;
  trace.certified_epsilon = response.certified_epsilon;
  trace.total_seconds = response.total_seconds;
  // Span tree from the response's phase scalars. Plan resolution and
  // search are not separately clocked on the serving path (that would
  // cost a timer read per query); the search span carries the engine's
  // per-iteration records, which is where the time goes.
  obs::TraceSpan queue_span{"queue-wait", 0.0, response.queue_seconds, 0};
  const double exec = response.total_seconds - response.queue_seconds;
  obs::TraceSpan exec_span{"execute", response.queue_seconds, exec, 0};
  obs::TraceSpan plan_span{response.cache_hit ? "plan-cache-hit"
                                              : "plan-build",
                           response.queue_seconds, 0.0, 1};
  obs::TraceSpan search_span{"search", response.queue_seconds, exec, 1};
  trace.spans = {queue_span, exec_span, plan_span, search_span};
  trace.iterations = response.stats.iteration_trace;
  tracer_.Record(std::move(trace));
}

void QueryService::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Already shut down (or shutting down); joining is single-shot
    // because only the winning caller reaches the joins below.
    return;
  }
  queue_.Close();  // workers drain admitted tasks, then Pop() ends
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

QueryServiceStats QueryService::Stats() const {
  // Dependency-ordered snapshot. Workers increment with release at
  // the consistency boundaries (completed_/failed_ after RecordOutcome
  // and after the queue pop; batches_executed_ after its member
  // count), and admission increments submitted_ before the queue push.
  // Reading the *later* event of each pair with acquire, then its
  // prerequisites, makes every returned snapshot obey:
  //   completed + failed <= submitted      (admission precedes work)
  //   batched_queries >= 2 * batches_executed
  //   sum(certified_eps_hist) >= completed  (outcome precedes count)
  // A relaxed field-by-field read — the previous implementation —
  // could see a completion without its admission and report
  // completed > submitted mid-load.
  QueryServiceStats out;
  out.batches_executed = batches_executed_.load(std::memory_order_acquire);
  out.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_acquire);
  out.failed = failed_.load(std::memory_order_acquire);
  out.anytime_queries = anytime_queries_.load(std::memory_order_relaxed);
  out.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < eval::ServiceCounters::kEpsBuckets; ++b) {
    out.certified_eps_hist[b] = eps_hist_[b].load(std::memory_order_relaxed);
  }
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.submitted = submitted_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    const ProximityCacheStats cache = cache_->Stats();
    out.cache_hits = cache.hits;
    out.cache_misses = cache.misses;
  }
  return out;
}

}  // namespace s3::server
