#include "server/query_service.h"

#include <utility>

namespace s3::server {

QueryService::QueryService(std::shared_ptr<const core::S3Instance> snapshot,
                           QueryServiceOptions options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      queue_(options.queue_capacity) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.enable_cache) {
    cache_ = std::make_unique<ProximityCache>(
        options_.cache_shards, options_.cache_capacity_per_shard);
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Status QueryService::ValidateQuery(const core::Query& query) const {
  if (!snapshot_->finalized()) {
    return Status::FailedPrecondition("snapshot not finalized");
  }
  if (query.seeker >= snapshot_->UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  if (query.keywords.empty()) {
    return Status::InvalidArgument("empty keyword set");
  }
  if (query.keywords.size() > 64) {
    return Status::InvalidArgument("queries are limited to 64 keywords");
  }
  return Status::OK();
}

Result<QueryFuture> QueryService::Admit(core::Query query, bool blocking) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  S3_RETURN_IF_ERROR(ValidateQuery(query));

  Task task;
  task.query = std::move(query);
  QueryFuture future = task.promise.get_future();
  const bool admitted =
      blocking ? queue_.Push(std::move(task)) : queue_.TryPush(std::move(task));
  if (!admitted) {
    if (queue_.closed()) {
      // Shutdown refusal, not load shedding — don't count it as an
      // admission-control rejection.
      return Status::FailedPrecondition("service is shut down");
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("admission queue full");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

Result<QueryFuture> QueryService::Submit(core::Query query) {
  return Admit(std::move(query), /*blocking=*/false);
}

Result<QueryFuture> QueryService::SubmitBlocking(core::Query query) {
  return Admit(std::move(query), /*blocking=*/true);
}

Result<std::shared_ptr<const core::CandidatePlan>> QueryService::ResolvePlan(
    const core::Query& query, ThreadPool* pool, bool* cache_hit) {
  *cache_hit = false;
  const bool use_semantics = options_.search.use_semantics;
  const double eta = options_.search.score.eta;
  if (cache_ == nullptr) {
    auto built = core::BuildCandidatePlan(*snapshot_, query.keywords,
                                          use_semantics, eta, pool);
    if (!built.ok()) return built.status();
    return std::make_shared<const core::CandidatePlan>(std::move(*built));
  }

  PlanCacheKey key = MakePlanKey(query.keywords, use_semantics, eta);
  if (auto plan = cache_->Lookup(key)) {
    *cache_hit = true;
    return plan;
  }
  // Miss: build from the canonical (sorted) keyword order, so the plan
  // serves every permutation of this multiset. Concurrent misses on
  // the same key may build twice; last insert wins and both plans are
  // equivalent, so no cross-worker build lock is needed.
  auto built = core::BuildCandidatePlan(*snapshot_, key.keywords,
                                        use_semantics, eta, pool);
  if (!built.ok()) return built.status();
  auto plan =
      std::make_shared<const core::CandidatePlan>(std::move(*built));
  cache_->Insert(key, plan);
  return plan;
}

void QueryService::WorkerLoop() {
  // The pooled searcher: one per worker, reused for every query the
  // worker answers (scratch state persists across queries).
  core::S3kSearcher searcher(*snapshot_, options_.search);

  while (auto popped = queue_.Pop()) {
    Task& task = *popped;
    QueryResponse response;
    response.queue_seconds = task.timer.ElapsedSeconds();

    auto plan = ResolvePlan(task.query, searcher.intra_pool(),
                            &response.cache_hit);
    if (!plan.ok()) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(plan.status());
      continue;
    }

    auto result = searcher.SearchWithPlan(task.query, **plan,
                                          &response.stats);
    if (!result.ok()) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(result.status());
      continue;
    }

    response.entries = std::move(*result);
    response.total_seconds = task.timer.ElapsedSeconds();
    latency_.Add(response.total_seconds);
    completed_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(std::move(response));
  }
}

void QueryService::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Already shut down (or shutting down); joining is single-shot
    // because only the winning caller reaches the joins below.
    return;
  }
  queue_.Close();  // workers drain admitted tasks, then Pop() ends
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

QueryServiceStats QueryService::Stats() const {
  QueryServiceStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace s3::server
