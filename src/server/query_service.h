// QueryService: the concurrent inter-query serving layer.
//
// One service owns
//   * the *current* immutable S3Instance snapshot (shared_ptr<const>;
//     the service and every in-flight query keep their generation
//     alive),
//   * a pool of N worker threads, each with its own long-lived
//     S3kSearcher (per-worker scratch: exploration frontiers, ordering
//     buffer, intra-query thread pool — nothing per query beyond the
//     bound engine),
//   * a bounded MPMC admission queue (common/bounded_queue.h), and
//   * a sharded, generation-tagged LRU proximity/candidate cache
//     (server/proximity_cache.h) shared by all workers.
//
// Submit(query) admits the query (or refuses with Unavailable when the
// queue is full — back-pressure instead of collapse) and returns a
// future the caller redeems for the top-k result. Workers pop queries
// FIFO, resolve the candidate plan through the cache (hit: skip
// extension + candidate construction entirely; miss: build and
// insert), run the seeker-specific exploration, and fulfil the
// promise. Shutdown() closes the queue, drains admitted work, and
// joins the workers; queries admitted before shutdown always complete.
//
// Live updates: SwapSnapshot(next) atomically publishes a new
// generation (normally base->ApplyDelta(delta)) mid-traffic. Each
// worker binds one snapshot per query at dequeue time: in-flight
// queries finish on the generation they started with (kept alive by
// shared_ptr), later dequeues see the new one, and every response is
// internally consistent with exactly one generation
// (QueryResponse::generation). Cached plans are keyed by generation,
// so a swap invalidates stale plans without flushing anything — plus
// an eager purge of the now-unreachable old-generation entries.
//
// Thread-safety: Submit/SubmitBlocking/Stats/SwapSnapshot may be
// called from any number of client threads. Snapshots are never
// mutated after Finalize (ApplyDelta builds successors copy-on-write
// on the side), so workers read them with no synchronization; the only
// swap-related cost on the query path is a mutex-guarded shared_ptr
// copy at admission (validation) and one more per dequeued query
// (binding) — microseconds against millisecond queries.
#ifndef S3_SERVER_QUERY_SERVICE_H_
#define S3_SERVER_QUERY_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/s3k.h"
#include "eval/service_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/proximity_cache.h"

namespace s3::server {

struct QueryServiceOptions {
  // Worker threads == pooled searchers. Each runs one query at a time.
  unsigned workers = 4;
  // Admission-queue capacity; Submit refuses beyond this (load shed).
  size_t queue_capacity = 256;
  // Per-worker searcher configuration. `search.threads` is the
  // *intra*-query parallelism of one worker — with many workers the
  // default of 1 avoids oversubscription; `search.threads = 0` means
  // "auto": size each worker's pool to intra_thread_budget.
  core::S3kOptions search;
  // Machine-wide intra-query thread budget shared by the busy workers:
  // each dequeued query runs with an effective concurrency of
  // max(1, budget / busy_workers), enforced through the searcher's
  // thread limit — so N workers × M intra-query threads can't
  // oversubscribe the machine, while a solo fat query on an idle
  // service gets the whole budget (= the whole pool when
  // search.threads = 0). 0 means "auto":
  // std::thread::hardware_concurrency().
  unsigned intra_thread_budget = 0;
  // Proximity/candidate cache; disable for ablation.
  bool enable_cache = true;
  size_t cache_shards = 8;
  size_t cache_capacity_per_shard = 64;
  // Multi-seeker batching: after dequeuing a query, the worker drains
  // up to batch_window - 1 further *queued* queries over the same
  // keyword multiset (same plan-cache key: sorted keywords —
  // use_semantics/eta are service-wide and the snapshot is bound once
  // per batch) and answers the whole run in one
  // S3kSearcher::SearchBatchWithPlan pass. Per-request QueryOptions
  // (k, epsilon_approx, deadline, mode) ride as per-lane parameters,
  // so they never fragment batches — the plan key is the only
  // compatibility requirement. Results are bit-for-bit what each query
  // would get alone; only latency/throughput change. 0 or 1 disables
  // batching. Capped at S3kSearcher::kMaxBatch. Batching only helps
  // when the queue actually backs up with same-plan queries
  // (throughput mode); an idle service answers singles either way.
  size_t batch_window = 0;
  // ---- observability (src/obs) ----
  // Registry this service publishes its metric series into; nullptr
  // means the process-wide obs::MetricRegistry::Default(). Tests pass
  // a private registry to isolate their series.
  obs::MetricRegistry* registry = nullptr;
  // Value of the {service="..."} label on every series this service
  // owns. Two live services sharing a registry must use distinct
  // labels (the shard router labels its per-shard services
  // "shard<i>"); series survive service restarts under the same label
  // and keep accumulating.
  std::string obs_label = "primary";
  // Query-trace sampling / slow-log policy (obs/trace.h).
  obs::TraceOptions trace;
};

// What the future resolves to on success.
struct QueryResponse {
  std::vector<core::ResultEntry> entries;
  core::SearchStats stats;
  // Generation of the snapshot that answered the query. Snapshot,
  // plan and searcher are all bound to this one generation.
  uint64_t generation = 0;
  bool cache_hit = false;        // plan served from the proximity cache
  double queue_seconds = 0.0;    // admission -> dequeue
  double total_seconds = 0.0;    // admission -> completion
  // Bounds block: the achieved certificate of this answer (mirrors
  // stats.certified_epsilon / stats.deadline_exceeded, surfaced here
  // so callers need not dig through SearchStats). certified_epsilon is
  // ~0 for exact converged answers, <= the requested epsilon_approx
  // for anytime exits, and may be infinity when a deadline truncated
  // the search before anything was certifiable.
  double certified_epsilon = 0.0;
  bool deadline_exceeded = false;
};

using QueryFuture = std::future<Result<QueryResponse>>;

// Monotonic service counters. `rejected` counts queue-full
// Unavailable refusals only (load shed); shutdown and validation
// refusals are not admission-control events. Cache hit/miss totals
// mirror the proximity cache so operators see them in one place
// (zero when the cache is disabled).
struct QueryServiceStats {
  uint64_t submitted = 0;    // admitted into the queue
  uint64_t rejected = 0;     // queue-full Unavailable refusals
  uint64_t completed = 0;    // promise fulfilled with a result
  uint64_t failed = 0;       // promise fulfilled with an error status
  uint64_t cache_hits = 0;   // plan served from the proximity cache
  uint64_t cache_misses = 0; // plan built (cache enabled but cold)
  // Multi-seeker batching (batch_window): queries answered inside a
  // width >= 2 batch, and how many such batches ran. Queries answered
  // alone (batching off, or no same-plan neighbor queued) count in
  // neither. batched_queries / batches_executed is the mean width of
  // the batches that amortized work.
  uint64_t batched_queries = 0;
  uint64_t batches_executed = 0;
  // Anytime serving: completed kAnytime-mode requests, completed
  // requests whose search deadline expired, and the histogram of the
  // achieved certificate (stats.certified_epsilon) over *every*
  // completed query — exact answers populate the leftmost buckets, so
  // the histogram doubles as a convergence-quality monitor.
  uint64_t anytime_queries = 0;
  uint64_t deadline_exceeded = 0;
  std::array<uint64_t, eval::ServiceCounters::kEpsBuckets>
      certified_eps_hist{};

  // The operational-health view (eval::FormatCounters renders it).
  eval::ServiceCounters Counters() const {
    eval::ServiceCounters c;
    c.rejected_queue_full = rejected;
    c.cache_hits = cache_hits;
    c.cache_misses = cache_misses;
    c.batched_queries = batched_queries;
    c.batches_executed = batches_executed;
    c.anytime_queries = anytime_queries;
    c.deadline_exceeded = deadline_exceeded;
    c.certified_eps_hist = certified_eps_hist;
    return c;
  }
};

class QueryService {
 public:
  // `snapshot` must be finalized. The service takes shared ownership.
  QueryService(std::shared_ptr<const core::S3Instance> snapshot,
               QueryServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Non-blocking admission. Takes a QueryRequest — a bare core::Query
  // converts to an exact request with service defaults — and validates
  // its per-request options (k/epsilon_approx/deadline/mode) up front.
  // Fails fast with InvalidArgument on a bad query or bad options,
  // Unavailable when the queue is full, FailedPrecondition after
  // Shutdown. On success the returned future resolves once a worker
  // has answered the query.
  Result<QueryFuture> Submit(core::QueryRequest query);

  // Blocking admission: waits for queue space instead of shedding.
  // Fails with FailedPrecondition once the service is shut down.
  Result<QueryFuture> SubmitBlocking(core::QueryRequest query);

  // Atomically publishes a new snapshot generation. `next` must be
  // finalized; it normally comes from ApplyDelta on the current
  // snapshot, and its generation should exceed the current one (the
  // cache purge assumes generations only grow). In-flight queries
  // complete on the snapshot they were dequeued with; queries dequeued
  // after the swap run on `next`. Fails with InvalidArgument on a null
  // or unfinalized snapshot and FailedPrecondition after Shutdown.
  Status SwapSnapshot(std::shared_ptr<const core::S3Instance> next);

  // Closes admission, drains already-admitted queries, joins workers.
  // Idempotent; also run by the destructor.
  void Shutdown();

  // Consistent snapshot of the service counters: the fields are read
  // in dependency order against the workers' release-ordered
  // completion increments, so for any returned snapshot
  // `completed + failed <= submitted`,
  // `batched_queries >= 2 * batches_executed`, and the
  // certified-epsilon histogram covers at least every completed query
  // — even while workers are mid-flight.
  QueryServiceStats Stats() const;

  // Instantaneous admission-queue depth (tasks admitted, not yet
  // dequeued): the load signal the shard router exports per shard.
  size_t queue_depth() const { return queue_.size(); }

  // Recent sampled traces and the slow-query log (obs/trace.h).
  const obs::TraceCollector& traces() const { return tracer_; }

  // Null when the cache is disabled.
  const ProximityCache* cache() const { return cache_.get(); }

  // Per-query total (admission -> completion) latencies, recorded by
  // the workers; snapshot with the caller's wall-clock window for QPS.
  const eval::LatencyRecorder& latency() const { return latency_; }

  // The current snapshot (the generation new queries will run on).
  std::shared_ptr<const core::S3Instance> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_;
  }

  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  struct Task {
    core::QueryRequest query;
    std::promise<Result<QueryResponse>> promise;
    WallTimer timer;  // started at admission
  };

  Status ValidateQuery(const core::S3Instance& snapshot,
                       const core::QueryRequest& query) const;
  Result<QueryFuture> Admit(core::QueryRequest query, bool blocking);
  void WorkerLoop(unsigned worker_index);

  // Registers this service's metric series (histogram handles +
  // callback views over the counters below) with options_.registry.
  void RegisterMetrics();

  // Counter bookkeeping for one completed response: anytime/deadline
  // counters plus the certified-epsilon histogram bucket.
  void RecordOutcome(const core::QueryRequest& query,
                     const core::SearchStats& stats);

  // Per-completion observability: the always-on slow-query check, and
  // — for the sampled batch head — the QueryTrace record. No-op with
  // obs compiled out.
  void FinishQueryObs(uint64_t query_id, bool sampled,
                      const core::QueryRequest& query,
                      const QueryResponse& response, size_t batch_width);

  // Resolves the candidate plan for a query against `snapshot` through
  // the cache (or builds it uncached); the cache key carries the
  // snapshot's generation. Sets `cache_hit`. `pool` (may be null) is
  // the calling worker's intra-query pool, reused for cache-miss
  // builds.
  Result<std::shared_ptr<const core::CandidatePlan>> ResolvePlan(
      const core::S3Instance& snapshot, const core::QueryRequest& query,
      ThreadPool* pool, bool* cache_hit);

  // Guards snapshot_ replacement; workers copy the pointer out once
  // per dequeued query.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const core::S3Instance> snapshot_;
  QueryServiceOptions options_;
  BoundedQueue<Task> queue_;
  std::unique_ptr<ProximityCache> cache_;
  std::vector<std::thread> workers_;
  // Resolved intra_thread_budget (0 replaced by hardware concurrency).
  unsigned intra_budget_ = 1;
  // Workers currently executing a query (not blocked on Pop): the
  // divisor of the per-query thread-budget share.
  std::atomic<unsigned> busy_workers_{0};
  std::atomic<bool> shutdown_{false};
  eval::LatencyRecorder latency_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> batches_executed_{0};
  std::atomic<uint64_t> anytime_queries_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> eps_hist_[eval::ServiceCounters::kEpsBuckets] = {};

  // ---- observability. The atomics above stay the single source of
  // truth: the registry exposes them through callback metrics (no
  // double counting, nothing new on the hot path); only the latency/
  // width histograms below are written per query. All of it compiles
  // to no-ops under -DS3_OBS=OFF.
  obs::TraceCollector tracer_;
  std::atomic<uint64_t> trace_ids_{0};
  // Per-worker cumulative busy time (seconds executing queries), for
  // the per-worker utilization series.
  std::unique_ptr<std::atomic<double>[]> worker_busy_seconds_;
  obs::Histogram* h_queue_wait_ = nullptr;
  obs::Histogram* h_exec_ = nullptr;
  obs::Histogram* h_total_ = nullptr;
  obs::Histogram* h_batch_width_ = nullptr;
  // Must be declared after every member its callbacks read (destroyed
  // first: callbacks are unregistered before the state dies).
  obs::CallbackSet callbacks_;
};

}  // namespace s3::server

#endif  // S3_SERVER_QUERY_SERVICE_H_
