// QueryService: the concurrent inter-query serving layer.
//
// One service owns
//   * an immutable shared S3Instance snapshot (shared_ptr<const>; the
//     service and every in-flight query keep it alive),
//   * a pool of N worker threads, each with its own long-lived
//     S3kSearcher (per-worker scratch: exploration frontiers, ordering
//     buffer, intra-query thread pool — nothing per query beyond the
//     bound engine),
//   * a bounded MPMC admission queue (common/bounded_queue.h), and
//   * a sharded LRU proximity/candidate cache
//     (server/proximity_cache.h) shared by all workers.
//
// Submit(query) admits the query (or refuses with Unavailable when the
// queue is full — back-pressure instead of collapse) and returns a
// future the caller redeems for the top-k result. Workers pop queries
// FIFO, resolve the candidate plan through the cache (hit: skip
// extension + candidate construction entirely; miss: build and
// insert), run the seeker-specific exploration, and fulfil the
// promise. Shutdown() closes the queue, drains admitted work, and
// joins the workers; queries admitted before shutdown always complete.
//
// Thread-safety: Submit/SubmitBlocking/Stats may be called from any
// number of client threads. The snapshot must never be mutated after
// the service is constructed (S3Instance has no post-Finalize mutation
// API, so const-ness enforces this).
#ifndef S3_SERVER_QUERY_SERVICE_H_
#define S3_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/s3k.h"
#include "eval/service_stats.h"
#include "server/proximity_cache.h"

namespace s3::server {

struct QueryServiceOptions {
  // Worker threads == pooled searchers. Each runs one query at a time.
  unsigned workers = 4;
  // Admission-queue capacity; Submit refuses beyond this (load shed).
  size_t queue_capacity = 256;
  // Per-worker searcher configuration. `search.threads` is the
  // *intra*-query parallelism of one worker — with many workers the
  // default of 1 avoids oversubscription.
  core::S3kOptions search;
  // Proximity/candidate cache; disable for ablation.
  bool enable_cache = true;
  size_t cache_shards = 8;
  size_t cache_capacity_per_shard = 64;
};

// What the future resolves to on success.
struct QueryResponse {
  std::vector<core::ResultEntry> entries;
  core::SearchStats stats;
  bool cache_hit = false;        // plan served from the proximity cache
  double queue_seconds = 0.0;    // admission -> dequeue
  double total_seconds = 0.0;    // admission -> completion
};

using QueryFuture = std::future<Result<QueryResponse>>;

// Monotonic service counters.
struct QueryServiceStats {
  uint64_t submitted = 0;  // admitted into the queue
  uint64_t rejected = 0;   // refused by admission control
  uint64_t completed = 0;  // promise fulfilled with a result
  uint64_t failed = 0;     // promise fulfilled with an error status
};

class QueryService {
 public:
  // `snapshot` must be finalized. The service takes shared ownership.
  QueryService(std::shared_ptr<const core::S3Instance> snapshot,
               QueryServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Non-blocking admission. Fails fast with InvalidArgument on a bad
  // query, Unavailable when the queue is full, FailedPrecondition
  // after Shutdown. On success the returned future resolves once a
  // worker has answered the query.
  Result<QueryFuture> Submit(core::Query query);

  // Blocking admission: waits for queue space instead of shedding.
  // Fails with FailedPrecondition once the service is shut down.
  Result<QueryFuture> SubmitBlocking(core::Query query);

  // Closes admission, drains already-admitted queries, joins workers.
  // Idempotent; also run by the destructor.
  void Shutdown();

  QueryServiceStats Stats() const;

  // Null when the cache is disabled.
  const ProximityCache* cache() const { return cache_.get(); }

  // Per-query total (admission -> completion) latencies, recorded by
  // the workers; snapshot with the caller's wall-clock window for QPS.
  const eval::LatencyRecorder& latency() const { return latency_; }

  const core::S3Instance& snapshot() const { return *snapshot_; }
  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  struct Task {
    core::Query query;
    std::promise<Result<QueryResponse>> promise;
    WallTimer timer;  // started at admission
  };

  Status ValidateQuery(const core::Query& query) const;
  Result<QueryFuture> Admit(core::Query query, bool blocking);
  void WorkerLoop();

  // Resolves the candidate plan for a query through the cache (or
  // builds it uncached). Sets `cache_hit`. `pool` (may be null) is the
  // calling worker's intra-query pool, reused for cache-miss builds.
  Result<std::shared_ptr<const core::CandidatePlan>> ResolvePlan(
      const core::Query& query, ThreadPool* pool, bool* cache_hit);

  std::shared_ptr<const core::S3Instance> snapshot_;
  QueryServiceOptions options_;
  BoundedQueue<Task> queue_;
  std::unique_ptr<ProximityCache> cache_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
  eval::LatencyRecorder latency_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
};

}  // namespace s3::server

#endif  // S3_SERVER_QUERY_SERVICE_H_
