#include "rdf/extension.h"

#include <unordered_set>

#include "rdf/vocab.h"

namespace s3::rdf {

std::vector<TermId> Extension(const TermDictionary& dict,
                              const TripleStore& store, TermId k) {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  out.push_back(k);
  seen.insert(k);

  auto add_subjects = [&](const char* property_uri) {
    TermId p = dict.Find(property_uri, TermKind::kUri);
    if (p == kInvalidTerm) return;
    for (uint32_t idx : store.WithPropertyObject(p, k)) {
      const Triple& t = store.triples()[idx];
      if (t.weight != 1.0) continue;
      if (seen.insert(t.subject).second) out.push_back(t.subject);
    }
  };

  add_subjects(vocab::kType);
  add_subjects(vocab::kSubClassOf);
  add_subjects(vocab::kSubPropertyOf);
  return out;
}

}  // namespace s3::rdf
