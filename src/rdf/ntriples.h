// Line-oriented RDF interchange, N-Triples style with an optional
// weight extension:
//
//   <subject> <property> <object> .
//   <subject> <property> "literal" .
//   <subject> <property> <object> 0.5 .        (weighted, non-standard)
//   # comment
//
// Used to load ontologies and to snapshot weighted RDF graphs; the
// weight column serializes the paper's weighted-triple model (§2.1).
#ifndef S3_RDF_NTRIPLES_H_
#define S3_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/term_dictionary.h"
#include "rdf/triple_store.h"

namespace s3::rdf {

struct NTriplesStats {
  size_t triples = 0;
  size_t lines = 0;
};

// Parses `text` into `store`, interning terms in `dict`. Stops at the
// first malformed line with its number in the error message.
Result<NTriplesStats> ParseNTriples(std::string_view text,
                                    TermDictionary& dict,
                                    TripleStore& store);

// Serializes the whole store, one triple per line; weights other than
// 1 are emitted with the weight column.
std::string SerializeNTriples(const TermDictionary& dict,
                              const TripleStore& store);

}  // namespace s3::rdf

#endif  // S3_RDF_NTRIPLES_H_
