// Well-known URIs: RDF/RDFS built-ins and the S3 namespace
// (paper Table 2).
#ifndef S3_RDF_VOCAB_H_
#define S3_RDF_VOCAB_H_

namespace s3::rdf::vocab {

// RDF / RDFS built-ins.
inline constexpr char kType[] = "rdf:type";
inline constexpr char kSubClassOf[] = "rdfs:subClassOf";        // ≺sc
inline constexpr char kSubPropertyOf[] = "rdfs:subPropertyOf";  // ≺sp
inline constexpr char kDomain[] = "rdfs:domain";                // ←d
inline constexpr char kRange[] = "rdfs:range";                  // ↪r

// S3 classes (paper Table 2).
inline constexpr char kUserClass[] = "S3:user";
inline constexpr char kDocClass[] = "S3:doc";
inline constexpr char kRelatedTo[] = "S3:relatedTo";

// S3 properties.
inline constexpr char kPostedBy[] = "S3:postedBy";
inline constexpr char kCommentsOn[] = "S3:commentsOn";
inline constexpr char kPartOf[] = "S3:partOf";
inline constexpr char kContains[] = "S3:contains";
inline constexpr char kNodeName[] = "S3:nodeName";
inline constexpr char kHasSubject[] = "S3:hasSubject";
inline constexpr char kHasKeyword[] = "S3:hasKeyword";
inline constexpr char kHasAuthor[] = "S3:hasAuthor";
inline constexpr char kSocial[] = "S3:social";

// Inverse properties (paper §2.4 "Inverse properties"): s p̄ o iff o p s.
inline constexpr char kPostedByInv[] = "S3:postedBy-";
inline constexpr char kCommentsOnInv[] = "S3:commentsOn-";
inline constexpr char kHasSubjectInv[] = "S3:hasSubject-";
inline constexpr char kHasAuthorInv[] = "S3:hasAuthor-";

}  // namespace s3::rdf::vocab

#endif  // S3_RDF_VOCAB_H_
