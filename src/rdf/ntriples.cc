#include "rdf/ntriples.h"

#include <cctype>
#include <cstdio>
#include <vector>

#include "common/str_util.h"

namespace s3::rdf {

namespace {

Status MalformedLine(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("N-Triples line " +
                                 std::to_string(line_no) + ": " + why);
}

// Reads a <uri> or "literal" token starting at `pos`; advances pos.
Result<TermId> ReadTerm(std::string_view line, size_t& pos,
                        TermDictionary& dict, size_t line_no,
                        bool allow_literal) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos >= line.size()) {
    return MalformedLine(line_no, "missing term");
  }
  if (line[pos] == '<') {
    size_t close = line.find('>', pos);
    if (close == std::string_view::npos) {
      return MalformedLine(line_no, "unterminated <uri>");
    }
    std::string_view uri = line.substr(pos + 1, close - pos - 1);
    pos = close + 1;
    return dict.InternUri(uri);
  }
  if (line[pos] == '"') {
    if (!allow_literal) {
      return MalformedLine(line_no, "literal not allowed here");
    }
    std::string value;
    size_t i = pos + 1;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        char esc = line[i + 1];
        value.push_back(esc == 'n' ? '\n' : esc == 't' ? '\t' : esc);
        i += 2;
      } else {
        value.push_back(line[i++]);
      }
    }
    if (i >= line.size()) {
      return MalformedLine(line_no, "unterminated literal");
    }
    pos = i + 1;
    return dict.InternLiteral(value);
  }
  return MalformedLine(line_no, "expected <uri> or \"literal\"");
}

std::string EscapeLiteral(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Result<NTriplesStats> ParseNTriples(std::string_view text,
                                    TermDictionary& dict,
                                    TripleStore& store) {
  NTriplesStats stats;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    ++stats.lines;

    // Trim and skip blanks / comments.
    size_t pos = 0;
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos >= line.size() || line[pos] == '#') {
      if (start > text.size()) break;
      continue;
    }

    Result<TermId> s = ReadTerm(line, pos, dict, line_no, false);
    if (!s.ok()) return s.status();
    Result<TermId> p = ReadTerm(line, pos, dict, line_no, false);
    if (!p.ok()) return p.status();
    Result<TermId> o = ReadTerm(line, pos, dict, line_no, true);
    if (!o.ok()) return o.status();

    // Optional weight, then the final dot.
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    double weight = 1.0;
    if (pos < line.size() && line[pos] != '.') {
      size_t consumed = 0;
      try {
        weight = std::stod(std::string(line.substr(pos)), &consumed);
      } catch (...) {
        return MalformedLine(line_no, "bad weight");
      }
      if (!(weight > 0.0 && weight <= 1.0)) {
        return MalformedLine(line_no, "weight out of (0,1]");
      }
      pos += consumed;
      while (pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
    }
    if (pos >= line.size() || line[pos] != '.') {
      return MalformedLine(line_no, "missing terminating '.'");
    }
    store.Add(*s, *p, *o, weight);
    ++stats.triples;
    if (start > text.size()) break;
  }
  return stats;
}

std::string SerializeNTriples(const TermDictionary& dict,
                              const TripleStore& store) {
  std::string out;
  for (const Triple& t : store.triples()) {
    out += "<" + dict.Text(t.subject) + "> <" + dict.Text(t.property) +
           "> ";
    if (dict.Kind(t.object) == TermKind::kUri) {
      out += "<" + dict.Text(t.object) + ">";
    } else {
      out += "\"" + EscapeLiteral(dict.Text(t.object)) + "\"";
    }
    if (t.weight != 1.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %g", t.weight);
      out += buf;
    }
    out += " .\n";
  }
  return out;
}

}  // namespace s3::rdf
