// Weighted RDF triple store with SPO/POS/OSP-style access paths.
//
// The S3 model (paper §2.1) works on a *weighted* RDF graph: each triple
// (s, p, o, w) carries a weight w in [0, 1], defaulting to 1. Saturation
// (RDFS entailment) only consumes and produces weight-1 triples.
#ifndef S3_RDF_TRIPLE_STORE_H_
#define S3_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "rdf/term_dictionary.h"

namespace s3::rdf {

// One weighted RDF statement.
struct Triple {
  TermId subject = kInvalidTerm;
  TermId property = kInvalidTerm;
  TermId object = kInvalidTerm;
  double weight = 1.0;

  bool operator==(const Triple& other) const {
    return subject == other.subject && property == other.property &&
           object == other.object;
  }
};

// In-memory triple store. Insertion is append-only; (s,p,o) is a key
// (re-inserting updates the weight). Lookup structures:
//   - by property           (POS order)
//   - by (property, subject)
//   - by (property, object)
class TripleStore {
 public:
  // Adds or updates a triple. Returns true if the triple was new.
  bool Add(TermId s, TermId p, TermId o, double weight = 1.0);

  bool Contains(TermId s, TermId p, TermId o) const;

  // Weight of (s,p,o); 0.0 if absent.
  double Weight(TermId s, TermId p, TermId o) const;

  // All objects o such that (s, p, o) holds.
  std::vector<TermId> Objects(TermId s, TermId p) const;

  // All subjects s such that (s, p, o) holds.
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  // Indices (into triples()) of all triples with property p.
  const std::vector<uint32_t>& WithProperty(TermId p) const;

  // Indices of all triples with property p and subject s.
  const std::vector<uint32_t>& WithPropertySubject(TermId p, TermId s) const;

  // Indices of all triples with property p and object o.
  const std::vector<uint32_t>& WithPropertyObject(TermId p, TermId o) const;

  // Triple-pattern matching: kAnyTerm acts as a wildcard. Returns the
  // matching triples (by value, in store order). Uses the best
  // available index for the bound positions.
  static constexpr TermId kAnyTerm = kInvalidTerm;
  std::vector<Triple> Match(TermId s, TermId p, TermId o) const;

  const std::vector<Triple>& triples() const { return triples_; }
  size_t size() const { return triples_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const Triple& t) const {
      uint64_t h = t.subject;
      h = h * 0x9e3779b97f4a7c15ULL + t.property;
      h = h * 0x9e3779b97f4a7c15ULL + t.object;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  static uint64_t Pair(TermId a, TermId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::vector<Triple> triples_;
  std::unordered_map<Triple, uint32_t, KeyHash> key_index_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_property_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_property_subject_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_property_object_;
};

}  // namespace s3::rdf

#endif  // S3_RDF_TRIPLE_STORE_H_
