// Keyword extension Ext(k) (paper Definition 2.1).
//
// Given a saturated S3 instance and a keyword k:
//   * k ∈ Ext(k);
//   * for any triple  b type k,  b ≺sc k  or  b ≺sp k,  b ∈ Ext(k).
//
// The extension never generalizes: every member is an instance or a
// specialization of k, so query results stay precise while semantics is
// injected into matching (paper requirement R3).
#ifndef S3_RDF_EXTENSION_H_
#define S3_RDF_EXTENSION_H_

#include <vector>

#include "rdf/term_dictionary.h"
#include "rdf/triple_store.h"

namespace s3::rdf {

// Computes Ext(k) over the (already saturated) store. The result always
// contains `k` itself, has no duplicates, and lists `k` first.
std::vector<TermId> Extension(const TermDictionary& dict,
                              const TripleStore& store, TermId k);

}  // namespace s3::rdf

#endif  // S3_RDF_EXTENSION_H_
