#include "rdf/term_dictionary.h"

#include <cassert>

namespace s3::rdf {

namespace {

std::string MakeKey(std::string_view text, TermKind kind) {
  std::string key;
  key.reserve(text.size() + 1);
  key.push_back(kind == TermKind::kUri ? 'u' : 'l');
  key.append(text);
  return key;
}

}  // namespace

TermId TermDictionary::Intern(std::string_view text, TermKind kind) {
  std::string key = MakeKey(text, kind);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(Entry{std::string(text), kind});
  index_.emplace(std::move(key), id);
  return id;
}

TermId TermDictionary::Find(std::string_view text, TermKind kind) const {
  auto it = index_.find(MakeKey(text, kind));
  return it == index_.end() ? kInvalidTerm : it->second;
}

const std::string& TermDictionary::Text(TermId id) const {
  assert(id < terms_.size());
  return terms_[id].text;
}

TermKind TermDictionary::Kind(TermId id) const {
  assert(id < terms_.size());
  return terms_[id].kind;
}

}  // namespace s3::rdf
