// Dictionary encoding of RDF terms (URIs and literals).
//
// Every term that appears as subject/property/object of a triple is
// interned to a dense TermId; the engine manipulates ids only and
// materializes strings back at the API boundary.
#ifndef S3_RDF_TERM_DICTIONARY_H_
#define S3_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace s3::rdf {

using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = UINT32_MAX;

// Kind of an interned term. The RDF standard requires subjects and
// properties to be URIs; objects may be URIs or literals.
enum class TermKind : uint8_t { kUri = 0, kLiteral = 1 };

// Append-only interner for RDF terms.
class TermDictionary {
 public:
  // Interns `text` with the given kind. Re-interning the same text with
  // the same kind returns the existing id; URIs and literals with equal
  // spelling are distinct terms.
  TermId Intern(std::string_view text, TermKind kind);

  TermId InternUri(std::string_view uri) {
    return Intern(uri, TermKind::kUri);
  }
  TermId InternLiteral(std::string_view lit) {
    return Intern(lit, TermKind::kLiteral);
  }

  // Returns the id or kInvalidTerm if absent.
  TermId Find(std::string_view text, TermKind kind) const;

  // Precondition: id < size().
  const std::string& Text(TermId id) const;
  TermKind Kind(TermId id) const;

  size_t size() const { return terms_.size(); }

 private:
  struct Entry {
    std::string text;
    TermKind kind;
  };

  // Key is kind-prefixed text ('u' / 'l' + spelling).
  std::unordered_map<std::string, TermId> index_;
  std::vector<Entry> terms_;
};

}  // namespace s3::rdf

#endif  // S3_RDF_TERM_DICTIONARY_H_
