// RDFS saturation (closure) of a weighted RDF graph.
//
// Implements the immediate-entailment rules of the RDF standard used by
// the paper (§2.1):
//   transitivity of ≺sc and ≺sp,
//   property propagation    (s p o), (p ≺sp q)  ⊢  s q o
//   domain typing           (s p o), (p ←d c)   ⊢  s type c
//   range typing            (s p o), (p ↪r c)   ⊢  o type c
//   class membership lift   (s type c), (c ≺sc d) ⊢ s type d
//
// Per the paper's weighted-graph semantics, a rule fires only when all
// its premises have weight 1, and the conclusion has weight 1. The
// closure is computed semi-naively (only newly derived triples are
// joined against the schema in each round) and reaches the unique
// finite fixpoint.
#ifndef S3_RDF_SATURATION_H_
#define S3_RDF_SATURATION_H_

#include <cstddef>

#include "rdf/term_dictionary.h"
#include "rdf/triple_store.h"

namespace s3::rdf {

struct SaturationStats {
  size_t input_triples = 0;
  size_t derived_triples = 0;
  size_t rounds = 0;
};

// Saturates `store` in place. `dict` provides (or interns) the RDF/RDFS
// built-in property ids. Returns statistics about the run.
SaturationStats Saturate(TermDictionary& dict, TripleStore& store);

// Incremental maintenance (cf. the paper's citation of [Goasdoué,
// Manolescu, Roatiș, EDBT'13]): adds `delta` to an ALREADY SATURATED
// store and derives exactly the consequences of the new triples —
// without re-joining the pre-existing ones. The result equals
// re-saturating from scratch (see saturation tests).
SaturationStats SaturateIncremental(TermDictionary& dict,
                                    TripleStore& store,
                                    const std::vector<Triple>& delta);

}  // namespace s3::rdf

#endif  // S3_RDF_SATURATION_H_
