#include "rdf/saturation.h"

#include <vector>

#include "rdf/vocab.h"

namespace s3::rdf {

namespace {

// Bundle of interned built-in property ids.
struct Builtins {
  TermId type;
  TermId sub_class;
  TermId sub_property;
  TermId domain;
  TermId range;
};

bool IsSchemaProperty(const Builtins& b, TermId p) {
  return p == b.sub_class || p == b.sub_property || p == b.domain ||
         p == b.range;
}

}  // namespace

namespace {

// Semi-naive fixpoint seeded with `delta`: joins only the seed (and the
// triples it derives) against the store, which makes the same routine
// serve both full saturation (seed = every weight-1 triple) and
// incremental maintenance (seed = the newly added triples).
SaturationStats RunFixpoint(TermDictionary& dict, TripleStore& store,
                            std::vector<Triple> delta) {
  Builtins b{
      dict.InternUri(vocab::kType),
      dict.InternUri(vocab::kSubClassOf),
      dict.InternUri(vocab::kSubPropertyOf),
      dict.InternUri(vocab::kDomain),
      dict.InternUri(vocab::kRange),
  };

  SaturationStats stats;
  stats.input_triples = store.size();

  auto derive = [&](TermId s, TermId p, TermId o,
                    std::vector<Triple>& next_delta) {
    if (store.Add(s, p, o, 1.0)) {
      next_delta.push_back(Triple{s, p, o, 1.0});
      ++stats.derived_triples;
    }
  };

  std::vector<Triple> next_delta;
  while (!delta.empty()) {
    ++stats.rounds;
    next_delta.clear();
    for (const Triple& t : delta) {
      if (t.weight != 1.0) continue;
      const TermId s = t.subject, p = t.property, o = t.object;

      // Joins below only consume weight-1 premises (paper §2.1).
      // Matches are collected before deriving: Add() may grow the very
      // index vectors being scanned (e.g. with cyclic schemas).
      auto for_po = [&](TermId prop, TermId obj, auto&& fn) {
        std::vector<TermId> matches;
        for (uint32_t idx : store.WithPropertyObject(prop, obj)) {
          const Triple& a = store.triples()[idx];
          if (a.weight == 1.0) matches.push_back(a.subject);
        }
        for (TermId m : matches) fn(m);
      };
      auto for_ps = [&](TermId prop, TermId subj, auto&& fn) {
        std::vector<TermId> matches;
        for (uint32_t idx : store.WithPropertySubject(prop, subj)) {
          const Triple& a = store.triples()[idx];
          if (a.weight == 1.0) matches.push_back(a.object);
        }
        for (TermId m : matches) fn(m);
      };

      if (p == b.sub_class) {
        // Transitivity: (s ≺sc o), (o ≺sc x) ⊢ (s ≺sc x); and join the
        // other side: (x ≺sc s) ⊢ (x ≺sc o).
        for_ps(b.sub_class, o,
               [&](TermId x) { derive(s, b.sub_class, x, next_delta); });
        for_po(b.sub_class, s,
               [&](TermId x) { derive(x, b.sub_class, o, next_delta); });
        // Membership lift for instances already typed with s.
        for_po(b.type, s,
               [&](TermId inst) { derive(inst, b.type, o, next_delta); });
      } else if (p == b.sub_property) {
        for_ps(b.sub_property, o,
               [&](TermId x) { derive(s, b.sub_property, x, next_delta); });
        for_po(b.sub_property, s,
               [&](TermId x) { derive(x, b.sub_property, o, next_delta); });
        // Propagate existing assertions of the sub-property.
        std::vector<Triple> assertions;
        for (uint32_t idx : store.WithProperty(s)) {
          const Triple& a = store.triples()[idx];
          if (a.weight == 1.0) assertions.push_back(a);
        }
        for (const Triple& a : assertions) {
          derive(a.subject, o, a.object, next_delta);
        }
      } else if (p == b.domain) {
        // (s ←d o): type every existing subject of property s.
        std::vector<Triple> assertions;
        for (uint32_t idx : store.WithProperty(s)) {
          const Triple& a = store.triples()[idx];
          if (a.weight == 1.0) assertions.push_back(a);
        }
        for (const Triple& a : assertions) {
          derive(a.subject, b.type, o, next_delta);
        }
      } else if (p == b.range) {
        std::vector<Triple> assertions;
        for (uint32_t idx : store.WithProperty(s)) {
          const Triple& a = store.triples()[idx];
          if (a.weight == 1.0) assertions.push_back(a);
        }
        for (const Triple& a : assertions) {
          derive(a.object, b.type, o, next_delta);
        }
      } else if (p == b.type) {
        // Membership lift through all superclasses.
        for_ps(b.sub_class, o,
               [&](TermId super) { derive(s, b.type, super, next_delta); });
      }

      if (!IsSchemaProperty(b, p) && p != b.type) {
        // Assertion triple (s p o): fire sub-property propagation,
        // domain and range typing against the schema.
        for_ps(b.sub_property, p,
               [&](TermId super) { derive(s, super, o, next_delta); });
        for_ps(b.domain, p,
               [&](TermId c) { derive(s, b.type, c, next_delta); });
        for_ps(b.range, p,
               [&](TermId c) { derive(o, b.type, c, next_delta); });
      }
    }
    delta.swap(next_delta);
  }
  return stats;
}

}  // namespace

SaturationStats Saturate(TermDictionary& dict, TripleStore& store) {
  std::vector<Triple> seed;
  seed.reserve(store.size());
  for (const Triple& t : store.triples()) {
    if (t.weight == 1.0) seed.push_back(t);
  }
  return RunFixpoint(dict, store, std::move(seed));
}

SaturationStats SaturateIncremental(TermDictionary& dict,
                                    TripleStore& store,
                                    const std::vector<Triple>& delta) {
  std::vector<Triple> seed;
  seed.reserve(delta.size());
  for (const Triple& t : delta) {
    // Insert the new triples first so rule joins can see them.
    if (store.Add(t.subject, t.property, t.object, t.weight) &&
        t.weight == 1.0) {
      seed.push_back(t);
    }
  }
  return RunFixpoint(dict, store, std::move(seed));
}

}  // namespace s3::rdf
