#include "rdf/triple_store.h"

namespace s3::rdf {

namespace {
const std::vector<uint32_t> kEmptyIndexList;
}  // namespace

bool TripleStore::Add(TermId s, TermId p, TermId o, double weight) {
  Triple t{s, p, o, weight};
  auto it = key_index_.find(t);
  if (it != key_index_.end()) {
    triples_[it->second].weight = weight;
    return false;
  }
  uint32_t idx = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  key_index_.emplace(t, idx);
  by_property_[p].push_back(idx);
  by_property_subject_[Pair(p, s)].push_back(idx);
  by_property_object_[Pair(p, o)].push_back(idx);
  return true;
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  return key_index_.contains(Triple{s, p, o, 0.0});
}

double TripleStore::Weight(TermId s, TermId p, TermId o) const {
  auto it = key_index_.find(Triple{s, p, o, 0.0});
  return it == key_index_.end() ? 0.0 : triples_[it->second].weight;
}

std::vector<TermId> TripleStore::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  for (uint32_t idx : WithPropertySubject(p, s)) {
    out.push_back(triples_[idx].object);
  }
  return out;
}

std::vector<TermId> TripleStore::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  for (uint32_t idx : WithPropertyObject(p, o)) {
    out.push_back(triples_[idx].subject);
  }
  return out;
}

std::vector<Triple> TripleStore::Match(TermId s, TermId p, TermId o) const {
  std::vector<Triple> out;
  auto matches = [&](const Triple& t) {
    return (s == kAnyTerm || t.subject == s) &&
           (p == kAnyTerm || t.property == p) &&
           (o == kAnyTerm || t.object == o);
  };
  // Pick the most selective available index.
  if (p != kAnyTerm && s != kAnyTerm) {
    for (uint32_t idx : WithPropertySubject(p, s)) {
      if (matches(triples_[idx])) out.push_back(triples_[idx]);
    }
  } else if (p != kAnyTerm && o != kAnyTerm) {
    for (uint32_t idx : WithPropertyObject(p, o)) {
      if (matches(triples_[idx])) out.push_back(triples_[idx]);
    }
  } else if (p != kAnyTerm) {
    for (uint32_t idx : WithProperty(p)) {
      if (matches(triples_[idx])) out.push_back(triples_[idx]);
    }
  } else {
    for (const Triple& t : triples_) {
      if (matches(t)) out.push_back(t);
    }
  }
  return out;
}

const std::vector<uint32_t>& TripleStore::WithProperty(TermId p) const {
  auto it = by_property_.find(p);
  return it == by_property_.end() ? kEmptyIndexList : it->second;
}

const std::vector<uint32_t>& TripleStore::WithPropertySubject(
    TermId p, TermId s) const {
  auto it = by_property_subject_.find(Pair(p, s));
  return it == by_property_subject_.end() ? kEmptyIndexList : it->second;
}

const std::vector<uint32_t>& TripleStore::WithPropertyObject(
    TermId p, TermId o) const {
  auto it = by_property_object_.find(Pair(p, o));
  return it == by_property_object_.end() ? kEmptyIndexList : it->second;
}

}  // namespace s3::rdf
