// Umbrella header: the full public API of the S3 library.
//
// Typical usage:
//
//   #include "s3/s3.h"
//
//   s3::core::S3Instance inst;
//   auto alice = inst.AddUser("user:alice");
//   ... add documents, tags, social edges, ontology ...
//   inst.Finalize();
//
//   s3::core::S3kSearcher searcher(inst, s3::core::S3kOptions{});
//   auto top = searcher.Search({alice, {inst.InternKeyword("degree")}});
#ifndef S3_S3_S3_H_
#define S3_S3_S3_H_

// Core: the unified social/structured/semantic instance and search.
#include "core/bound_engine.h"
#include "core/connections.h"
#include "core/naive_reference.h"
#include "core/s3_instance.h"
#include "core/s3k.h"
#include "core/score.h"
#include "core/serialization.h"

// Substrates.
#include "doc/dewey.h"
#include "doc/document.h"
#include "doc/document_store.h"
#include "doc/inverted_index.h"
#include "doc/json_parser.h"
#include "doc/xml_parser.h"
#include "rdf/extension.h"
#include "rdf/ntriples.h"
#include "rdf/saturation.h"
#include "rdf/term_dictionary.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "social/components.h"
#include "social/edge_store.h"
#include "social/entity.h"
#include "social/simrank.h"
#include "social/transition_matrix.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

// Baseline, workloads, evaluation.
#include "baseline/flatten.h"
#include "baseline/topks.h"
#include "baseline/uit.h"
#include "eval/metrics.h"
#include "eval/runtime.h"
#include "workload/business_gen.h"
#include "workload/instance_stats.h"
#include "workload/microblog_gen.h"
#include "workload/ontology_gen.h"
#include "workload/query_gen.h"
#include "workload/review_gen.h"

// Utilities.
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

#endif  // S3_S3_S3_H_
