#include "shard/shard_meta.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "common/file_io.h"
#include "common/str_util.h"
#include "server/snapshot_manager.h"

namespace s3::shard {

namespace fs = std::filesystem;

std::string EncodeShardMeta(const ShardMetaData& meta) {
  std::string out = "S3SHARD v1\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "shard %u %u\n", meta.shard_index,
                meta.shard_count);
  out += buf;
  std::snprintf(buf, sizeof(buf), "boundary %" PRIu64 "\n",
                meta.boundary_social_edges);
  out += buf;
  std::snprintf(buf, sizeof(buf), "owned_users %u\n", meta.owned_users);
  out += buf;
  for (doc::DocId d = 0; d < meta.map.doc_count(); ++d) {
    std::snprintf(buf, sizeof(buf), "D %u %u %u\n", meta.map.GlobalDoc(d),
                  meta.map.GlobalNodeBase(d), meta.map.NodeCount(d));
    out += buf;
  }
  for (social::TagId t = 0; t < meta.map.tag_count(); ++t) {
    std::snprintf(buf, sizeof(buf), "T %u\n", meta.map.GlobalTag(t));
    out += buf;
  }
  return out;
}

namespace {

Status Bad(const char* which, const std::string& why) {
  return Status::InvalidArgument(std::string(which) + ": " + why);
}

// Splits `text` into whitespace-token lines, skipping blanks/comments.
std::vector<std::vector<std::string>> Lines(std::string_view text) {
  std::vector<std::vector<std::string>> out;
  for (const std::string& line : Split(text, "\n")) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = Split(line, " \t\r");
    if (!toks.empty()) out.push_back(std::move(toks));
  }
  return out;
}

// Strict decimal parse (overflow is a parse error, not a wrap).
Result<uint64_t> U64(const std::string& tok) {
  uint64_t v = 0;
  if (!ParseU64(tok, &v)) {
    return Status::InvalidArgument("not a number: " + tok);
  }
  return v;
}

}  // namespace

Result<ShardMetaData> ParseShardMeta(std::string_view text) {
  auto lines = Lines(text);
  if (lines.empty() || lines[0].size() != 2 || lines[0][0] != "S3SHARD" ||
      lines[0][1] != "v1") {
    return Bad("shard.meta", "missing S3SHARD v1 header");
  }
  ShardMetaData meta;
  bool have_shard = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto& t = lines[i];
    if (t[0] == "shard" && t.size() == 3) {
      auto a = U64(t[1]), b = U64(t[2]);
      if (!a.ok() || !b.ok()) return Bad("shard.meta", "bad shard line");
      meta.shard_index = static_cast<uint32_t>(*a);
      meta.shard_count = static_cast<uint32_t>(*b);
      have_shard = true;
    } else if (t[0] == "boundary" && t.size() == 2) {
      auto v = U64(t[1]);
      if (!v.ok()) return Bad("shard.meta", "bad boundary line");
      meta.boundary_social_edges = *v;
    } else if (t[0] == "owned_users" && t.size() == 2) {
      auto v = U64(t[1]);
      if (!v.ok()) return Bad("shard.meta", "bad owned_users line");
      meta.owned_users = static_cast<uint32_t>(*v);
    } else if (t[0] == "D" && t.size() == 4) {
      auto g = U64(t[1]), base = U64(t[2]), n = U64(t[3]);
      if (!g.ok() || !base.ok() || !n.ok() || *n == 0) {
        return Bad("shard.meta", "bad D line");
      }
      if (meta.map.doc_count() > 0 &&
          *g <= meta.map.GlobalDoc(
                    static_cast<doc::DocId>(meta.map.doc_count() - 1))) {
        return Bad("shard.meta", "D lines not ascending");
      }
      meta.map.AddDoc(static_cast<doc::DocId>(*g),
                      static_cast<doc::NodeId>(*base),
                      static_cast<uint32_t>(*n));
    } else if (t[0] == "T" && t.size() == 2) {
      auto g = U64(t[1]);
      if (!g.ok()) return Bad("shard.meta", "bad T line");
      if (meta.map.tag_count() > 0 &&
          *g <= meta.map.GlobalTag(
                    static_cast<social::TagId>(meta.map.tag_count() - 1))) {
        return Bad("shard.meta", "T lines not ascending");
      }
      meta.map.AddTag(static_cast<social::TagId>(*g));
    } else {
      return Bad("shard.meta", "unknown line '" + t[0] + "'");
    }
  }
  if (!have_shard || meta.shard_count == 0 ||
      meta.shard_index >= meta.shard_count) {
    return Bad("shard.meta", "missing or inconsistent shard line");
  }
  return meta;
}

std::string EncodePartitionMeta(const PartitionMetaData& meta) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "S3PART v1\nshards %u\nboundary %" PRIu64 "\n",
                meta.shard_count, meta.boundary_social_edges);
  return buf;
}

Result<PartitionMetaData> ParsePartitionMeta(std::string_view text) {
  auto lines = Lines(text);
  if (lines.empty() || lines[0].size() != 2 || lines[0][0] != "S3PART" ||
      lines[0][1] != "v1") {
    return Bad("partition.meta", "missing S3PART v1 header");
  }
  PartitionMetaData meta;
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto& t = lines[i];
    if (t[0] == "shards" && t.size() == 2) {
      auto v = U64(t[1]);
      if (!v.ok()) return Bad("partition.meta", "bad shards line");
      meta.shard_count = static_cast<uint32_t>(*v);
    } else if (t[0] == "boundary" && t.size() == 2) {
      auto v = U64(t[1]);
      if (!v.ok()) return Bad("partition.meta", "bad boundary line");
      meta.boundary_social_edges = *v;
    } else {
      return Bad("partition.meta", "unknown line '" + t[0] + "'");
    }
  }
  if (meta.shard_count == 0 || meta.shard_count > 64) {
    return Bad("partition.meta", "shard count out of range");
  }
  return meta;
}

std::string ShardDirName(const std::string& root, uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/shard-%03u", index);
  return root + buf;
}

Status WritePartition(const PartitionResult& partition,
                      const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::Internal("cannot create " + root + ": " + ec.message());
  }
  if (fs::exists(root + "/" + kPartitionMetaFile)) {
    return Status::FailedPrecondition(
        root + " already holds a partition (found " +
        std::string(kPartitionMetaFile) + ")");
  }

  for (const ShardPart& part : partition.shards) {
    server::SnapshotManagerOptions opts;
    opts.dir = ShardDirName(root, part.index);
    opts.background_checkpoints = false;
    auto manager = server::SnapshotManager::Open(opts);
    if (!manager.ok()) return manager.status();
    if ((*manager)->has_state()) {
      return Status::FailedPrecondition(opts.dir +
                                        " already holds serving state");
    }
    S3_RETURN_IF_ERROR((*manager)->Initialize(part.instance));

    ShardMetaData meta;
    meta.shard_index = part.index;
    meta.shard_count = partition.shard_count;
    meta.boundary_social_edges = part.boundary_social_edges;
    meta.owned_users = part.owned_users;
    meta.map = part.map;
    S3_RETURN_IF_ERROR(WriteFileAtomic(opts.dir + "/" + kShardMetaFile,
                                       EncodeShardMeta(meta)));
  }

  PartitionMetaData meta;
  meta.shard_count = partition.shard_count;
  meta.boundary_social_edges = partition.boundary_social_edges;
  return WriteFileAtomic(root + "/" + kPartitionMetaFile,
                         EncodePartitionMeta(meta));
}

}  // namespace s3::shard
