// ShardRouter: serves one logical S3 population as N cooperating
// shard instances (src/server/SHARDING.md).
//
// The router owns one QueryService (and, for storage-backed
// deployments, one SnapshotManager) per shard, plus the routing state:
// the user -> reach-group table, the per-group shard materialization
// masks, and the per-shard local<->global id maps produced by the
// partitioner.
//
// Queries. A query is seeker-scoped; the seeker's *home shard*
// (ShardOfUser) always materializes the seeker's whole reach group, so
//   * Query(q)        routes to the home shard — one hop, exact;
//   * QueryGlobal(q)  scatter-gathers over every shard and merges the
//     candidate streams with a bound-aware k-heap. Shards that do not
//     materialize the seeker's group are pruned *before* the fan-out:
//     no social path from the seeker exists there, so their statically
//     reported upper bound is 0. Queried shards return score intervals
//     plus a remaining-upper export (SearchStats::remaining_upper);
//     a stream whose best possible score falls below the current
//     global k-th lower bound is dropped from the merge unread.
//     Results are deduplicated by global node id (replicated groups
//     return identical streams) and are bit-for-bit identical to the
//     single-instance answer.
//
// Updates. ApplyUpdate routes one GlobalUpdate — a batch of population
// ops in *global* ids — to the shards materializing the touched
// groups, as one InstanceDelta per shard (new keyword spellings go to
// every shard so KeywordIds stay aligned). Each shard advances its own
// generation independently — ShardedResponse reports the per-shard
// generation vector. An op that would merge two groups materialized on
// *different* shard sets is refused (FailedPrecondition) before
// anything is applied: honoring it would require moving population
// between shards (rebalancing = shipping snapshot files; see
// SHARDING.md follow-ons).
//
// Thread-safety: Query / QueryGlobal / Generations may be called from
// any number of threads, concurrently with at most one ApplyUpdate at
// a time (updates serialize on an internal mutex; routing state is
// guarded by a shared_mutex that queries only hold to translate ids —
// never across a shard round-trip).
#ifndef S3_SHARD_SHARD_ROUTER_H_
#define S3_SHARD_SHARD_ROUTER_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/instance_delta.h"
#include "obs/metrics.h"
#include "server/snapshot_manager.h"
#include "shard/partitioner.h"

namespace s3::shard {

struct ShardRouterOptions {
  // Per-shard serving configuration (workers, queue, cache).
  server::QueryServiceOptions service;
  // Storage-backed deployments only: checkpoint cadence applied to
  // every shard's SnapshotManager (dir is set per shard).
  uint64_t checkpoint_every = 0;
  bool background_checkpoints = true;
};

// Per-shard outcome of one routed or scattered query. The bound
// exports (kth_lower / remaining_upper / certified_epsilon) are always
// the *post-search* values of the search that answered this request —
// the plan cache stores seeker-independent plans, never stats — so a
// cache-hit answer exports exactly what the cold answer did.
struct ShardReport {
  uint32_t shard = 0;
  uint64_t generation = 0;      // generation at merge time
  bool queried = false;
  bool pruned_unreachable = false;  // no social path: static 0 bound
  bool pruned_bound = false;        // stream below the global k-th lower
  bool cache_hit = false;
  bool deadline_exceeded = false;   // this shard's search hit its deadline
  double kth_lower = 0.0;
  double remaining_upper = 0.0;
  double certified_epsilon = 0.0;   // this shard's local certificate
  size_t entries = 0;
  // ---- load signals (ROADMAP item 3's load-aware-scatter input) ----
  // End-to-end latency of this shard's sub-query as the router saw it
  // (admission -> completion inside the shard's QueryService); 0 for
  // pruned shards.
  double scatter_seconds = 0.0;
  // The shard's admission-queue depth sampled at scatter submit: how
  // loaded the shard already was when this query targeted it.
  size_t queue_depth = 0;
};

struct ShardedResponse {
  // Merged top-k in *global* node ids; bit-for-bit the single-instance
  // answer (entries, order and score intervals).
  std::vector<core::ResultEntry> entries;
  // Per-shard generation vector at merge time.
  std::vector<uint64_t> generations;
  std::vector<ShardReport> shards;
  size_t shards_queried = 0;
  size_t shards_pruned = 0;
  // Search stats of the seeker's home shard (global nodes in
  // candidate_nodes are NOT remapped; sizes/counters only).
  core::SearchStats stats;
  bool cache_hit = false;  // home shard's plan-cache outcome
  // Global certificate of the merged answer, folded from the per-shard
  // bound exports: kth_lower is the worst lower bound among the merged
  // entries; remaining_upper bounds every document *not* merged (shard
  // remaining-upper exports, the best possible score of bound-pruned
  // streams, and the uppers of entries that lost the merge);
  // certified_epsilon = max(0, remaining_upper/kth_lower - 1). A shard
  // whose deadline expired degrades the certificate — its export is
  // looser — instead of failing the query; deadline_exceeded reports
  // that any queried shard was truncated.
  double kth_lower = 0.0;
  double remaining_upper = 0.0;
  double certified_epsilon = 0.0;
  bool deadline_exceeded = false;
};

// A batch of population growth in global ids, built against the
// router's current global population (BeginUpdate captures the base
// counts; a stale update is refused). Ids returned here are the global
// ids the entities have after ApplyUpdate.
class GlobalUpdate {
 public:
  KeywordId InternKeyword(std::string_view keyword);
  std::vector<KeywordId> InternText(std::string_view text);

  Result<doc::DocId> AddDocument(doc::Document document, std::string uri,
                                 social::UserId poster);
  Status AddComment(doc::DocId comment, doc::NodeId target);
  Result<social::TagId> AddTagOnFragment(social::UserId author,
                                         doc::NodeId subject,
                                         KeywordId keyword);
  Result<social::TagId> AddTagOnTag(social::UserId author,
                                    social::TagId subject,
                                    KeywordId keyword);
  Status AddSocialEdge(social::UserId from, social::UserId to,
                       double weight);

  bool empty() const { return ops_.empty() && spellings_.empty(); }
  size_t op_count() const { return ops_.size(); }

 private:
  friend class ShardRouter;

  enum class Kind : uint8_t { kDocument, kComment, kTag, kSocial };
  struct Op {
    Kind kind;
    // kDocument: document/uri/user; assigned global ids in a/b.
    doc::Document document{""};
    std::string uri;
    social::UserId user = 0;   // poster / author / from
    uint32_t a = 0;            // node base / comment doc / subject / to
    uint32_t b = 0;            // target node / keyword
    uint32_t assigned = 0;     // assigned global doc / tag id
    double weight = 0.0;
    bool on_tag = false;
  };

  GlobalUpdate(uint64_t users, uint64_t docs, uint64_t nodes, uint64_t tags,
               uint64_t vocab,
               std::shared_ptr<const core::S3Instance> vocab_view);

  // Combined-population bounds for early validation.
  uint64_t next_doc() const { return base_docs_ + new_docs_; }
  uint64_t next_node() const { return base_nodes_ + new_nodes_; }
  uint64_t next_tag() const { return base_tags_ + new_tags_; }

  uint64_t base_users_, base_docs_, base_nodes_, base_tags_, base_vocab_;
  uint64_t new_docs_ = 0, new_nodes_ = 0, new_tags_ = 0;
  // Any shard snapshot works as the interning base: keyword ids are
  // shard-invariant. Held alive for the update's lifetime.
  std::shared_ptr<const core::S3Instance> vocab_view_;
  std::vector<Op> ops_;
  std::vector<std::string> spellings_;
  std::unordered_map<std::string, KeywordId> overlay_;
};

class ShardRouter {
 public:
  // In-memory deployment over a freshly partitioned population.
  static Result<std::unique_ptr<ShardRouter>> Serve(
      PartitionResult partition, ShardRouterOptions options);

  // Storage-backed deployment: opens every shard directory under
  // `root` (recovering snapshots + WAL tails), re-derives the group
  // table from the shards' reach partitions, and serves. Fails with
  // InvalidArgument when the directories are inconsistent (e.g. a
  // shard.meta that does not cover its recovered population).
  static Result<std::unique_ptr<ShardRouter>> Open(
      const std::string& root, ShardRouterOptions options);

  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Seeker-routed query (one shard). Takes a QueryRequest — a bare
  // core::Query converts to an exact request — and propagates it
  // verbatim to the shard's QueryService, so per-request
  // k/epsilon/deadline/mode behave exactly as on a single instance.
  Result<ShardedResponse> Query(const core::QueryRequest& query);

  // Scatter-gather with bound-aware merge; identical entries to
  // Query(), plus per-shard reports and the *global* certificate
  // folded from every shard's bound exports (ShardedResponse).
  Result<ShardedResponse> QueryGlobal(const core::QueryRequest& query);

  // Starts an update batch against the current global population.
  GlobalUpdate BeginUpdate() const;

  // Routes and applies one batch; every touched shard logs (storage
  // mode) and hot-swaps its own successor generation.
  Status ApplyUpdate(const GlobalUpdate& update);

  uint32_t shard_count() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t HomeShardOfUser(social::UserId u) const;
  std::vector<uint64_t> Generations() const;
  const server::QueryService& service(uint32_t s) const {
    return *shards_[s].service;
  }

  // Global population counters (users never change; the rest grow
  // with updates).
  uint64_t user_count() const { return n_users_; }
  uint64_t doc_count() const;
  uint64_t tag_count() const;

 private:
  struct Shard {
    uint32_t index = 0;
    std::unique_ptr<server::SnapshotManager> manager;  // storage mode only
    std::unique_ptr<server::QueryService> service;
    ShardMap map;
    uint64_t boundary_social_edges = 0;
    uint32_t owned_users = 0;
  };

  ShardRouter() = default;

  // Group of a user / owning user of a global doc or tag, under
  // state_mu_ (shared).
  uint32_t RootOf(social::UserId u) const { return user_root_[u]; }
  uint64_t MaskOfRoot(uint32_t root) const;
  Result<social::UserId> OwnerOfGlobalNode(
      doc::NodeId node, const std::vector<social::UserId>& pending_doc_owner,
      const std::vector<doc::NodeId>& pending_doc_base,
      const std::vector<uint32_t>& pending_doc_nodes) const;

  Result<ShardedResponse> QueryShards(const core::QueryRequest& query,
                                      bool scatter);

  Status PersistShardMeta(const Shard& shard);

  // Registers the router-level metric series (per-shard scatter
  // latency histograms, prune/dedup counters) once shards_ is built.
  // No-op under -DS3_OBS=OFF.
  void RegisterMetrics();

  std::string root_dir_;  // empty for in-memory deployments
  ShardRouterOptions options_;
  std::vector<Shard> shards_;
  uint64_t n_users_ = 0;

  // Guards the routing state below (queries: shared; updates:
  // exclusive). Never held across a shard round-trip.
  mutable std::shared_mutex state_mu_;
  std::vector<uint32_t> user_root_;           // reach group per user
  std::vector<uint32_t> home_;                // home shard per user
  std::vector<uint64_t> root_mask_;           // per user id (valid at roots)
  std::vector<social::UserId> doc_owner_;     // per global doc
  std::vector<doc::NodeId> doc_node_base_;    // per global doc, ascending
  std::vector<uint32_t> doc_node_count_;      // per global doc
  std::vector<social::UserId> tag_owner_;     // per global tag
  uint64_t n_nodes_ = 0;
  uint64_t n_vocab_ = 0;

  // Serializes writers (ApplyUpdate).
  std::mutex update_mu_;

  // ---- observability (registry-owned handles; no-ops when compiled
  // out). h_scatter_[s] is this router's view of shard s's sub-query
  // latency; the per-shard QueryServices additionally publish their
  // own series under {service="shard<s>"} labels.
  std::vector<obs::Histogram*> h_scatter_;
  obs::Counter* c_pruned_unreachable_ = nullptr;
  obs::Counter* c_pruned_bound_ = nullptr;
  obs::Counter* c_merge_dedup_ = nullptr;
};

}  // namespace s3::shard

#endif  // S3_SHARD_SHARD_ROUTER_H_
