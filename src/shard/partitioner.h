// Population partitioner: splits one finalized S3Instance into N
// self-contained shard instances that together serve the same queries
// bit-for-bit (src/server/SHARDING.md).
//
// Placement unit: the *reach group* (S3Instance::ReachRootOfUser) — the
// weakly-connected component of the entity graph projected onto owning
// users. Every user has a deterministic *home shard* (endian-stable
// FNV-1a of the user id, mod N); a group is materialized on the home
// shard of each of its members. A social edge whose endpoints hash to
// different homes is a *boundary edge*: it (and, transitively, the
// whole group) is replicated into both homes, so each shard holds the
// complete social neighborhood of every seeker it is the home of —
// which is exactly what makes per-shard scores equal to the unsharded
// ones (no path is ever cut; proximity mass is never split).
//
// Id spaces: users and keywords are replicated into every shard in
// global id order, so UserId / KeywordId are shard-invariant (queries
// route without translation; deltas stay aligned). Documents, nodes
// and tags are shard-local and dense; a ShardMap records the
// order-preserving (hence monotone) local <-> global correspondence.
//
// Determinism: the same population and shard count produce the same
// assignment on every platform — the hash reads explicit little-endian
// bytes, the replay walks the instance's edge log in insertion order,
// and no pointer- or hash-map-iteration order leaks into any output.
#ifndef S3_SHARD_PARTITIONER_H_
#define S3_SHARD_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/s3_instance.h"

namespace s3::shard {

// FNV-1a 64 over the four little-endian bytes of the user id:
// platform- and endian-stable by construction (bytes are extracted by
// shifts, never by memcpy). Golden values are pinned in
// tests/shard_test.cc.
uint64_t StableUserHash(social::UserId u);

// Home shard of a user: StableUserHash(u) % shard_count.
uint32_t ShardOfUser(social::UserId u, uint32_t shard_count);

struct PartitionOptions {
  // 1..64 shards (group materialization sets are u64 bitmasks).
  uint32_t shard_count = 1;
};

// Order-preserving local <-> global id maps for one shard's documents,
// nodes and tags. All arrays are ascending (the replay keeps global
// order), so lookups are binary searches and the map stays valid —
// append-only — across live updates.
class ShardMap {
 public:
  void AddDoc(doc::DocId global_doc, doc::NodeId global_node_base,
              uint32_t n_nodes);
  void AddTag(social::TagId global_tag);

  size_t doc_count() const { return doc_global_.size(); }
  size_t tag_count() const { return tag_global_.size(); }
  size_t node_count() const { return node_base_local_.empty()
                                  ? 0
                                  : node_base_local_.back() +
                                        node_count_.back(); }

  doc::DocId GlobalDoc(doc::DocId local) const { return doc_global_[local]; }
  social::TagId GlobalTag(social::TagId local) const {
    return tag_global_[local];
  }
  doc::NodeId GlobalNodeBase(doc::DocId local) const {
    return node_base_global_[local];
  }
  uint32_t NodeCount(doc::DocId local) const { return node_count_[local]; }

  // Local node -> global node (and back). Lookup failures mean the
  // entity is not materialized on this shard — or, for GlobalNode, that
  // the local id lies beyond the mapped range (a shard generation the
  // map does not cover yet): an error, never a silent mis-translation.
  Result<doc::NodeId> GlobalNode(doc::NodeId local) const;
  Result<doc::DocId> LocalDoc(doc::DocId global) const;
  Result<doc::NodeId> LocalNode(doc::NodeId global) const;
  Result<social::TagId> LocalTag(social::TagId global) const;

  const std::vector<doc::DocId>& doc_global() const { return doc_global_; }
  const std::vector<social::TagId>& tag_global() const { return tag_global_; }

 private:
  std::vector<doc::DocId> doc_global_;        // per local doc, ascending
  std::vector<doc::NodeId> node_base_global_; // global id of local node 0
  std::vector<uint32_t> node_count_;
  std::vector<doc::NodeId> node_base_local_;  // cumulative sum, ascending
  std::vector<social::TagId> tag_global_;     // ascending
};

// One shard of a partition.
struct ShardPart {
  uint32_t index = 0;
  std::shared_ptr<const core::S3Instance> instance;
  ShardMap map;
  // Social edges kept on this shard whose endpoints have different
  // home shards (each is counted on every shard that materialized it).
  uint64_t boundary_social_edges = 0;
  uint32_t owned_users = 0;        // users whose home shard this is
  uint64_t materialized_groups = 0;
};

struct PartitionResult {
  uint32_t shard_count = 0;
  // Reach root per user, copied from the source instance (the
  // router's initial group table).
  std::vector<uint32_t> user_root;
  std::vector<ShardPart> shards;
  // Distinct social edges with cross-home endpoints (population-wide).
  uint64_t boundary_social_edges = 0;

  // Global population tables the router needs for delta routing.
  std::vector<social::UserId> doc_owner;      // poster per global doc
  std::vector<doc::NodeId> doc_node_base;     // first node per global doc
  std::vector<social::UserId> tag_owner;      // author per global tag
  uint64_t n_nodes = 0;
  uint64_t n_vocab = 0;
};

// Splits `full` (finalized) into shard_count instances. Fails with
// InvalidArgument on a bad shard count or an unfinalized instance.
Result<PartitionResult> Partition(const core::S3Instance& full,
                                  const PartitionOptions& options);

}  // namespace s3::shard

#endif  // S3_SHARD_PARTITIONER_H_
