#include "shard/shard_router.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/file_io.h"
#include "shard/shard_meta.h"
#include "text/tokenizer.h"

namespace s3::shard {

// ---- GlobalUpdate ---------------------------------------------------------

GlobalUpdate::GlobalUpdate(uint64_t users, uint64_t docs, uint64_t nodes,
                           uint64_t tags, uint64_t vocab,
                           std::shared_ptr<const core::S3Instance> vocab_view)
    : base_users_(users),
      base_docs_(docs),
      base_nodes_(nodes),
      base_tags_(tags),
      base_vocab_(vocab),
      vocab_view_(std::move(vocab_view)) {}

KeywordId GlobalUpdate::InternKeyword(std::string_view keyword) {
  const KeywordId existing = vocab_view_->vocabulary().Find(keyword);
  if (existing != kInvalidKeyword) return existing;
  auto it = overlay_.find(std::string(keyword));
  if (it != overlay_.end()) return it->second;
  const KeywordId id =
      static_cast<KeywordId>(base_vocab_ + spellings_.size());
  spellings_.emplace_back(keyword);
  overlay_.emplace(spellings_.back(), id);
  return id;
}

std::vector<KeywordId> GlobalUpdate::InternText(std::string_view text) {
  std::vector<KeywordId> out;
  for (const std::string& word : ExtractKeywords(text)) {
    out.push_back(InternKeyword(word));
  }
  return out;
}

Result<doc::DocId> GlobalUpdate::AddDocument(doc::Document document,
                                             std::string uri,
                                             social::UserId poster) {
  if (poster >= base_users_) {
    return Status::InvalidArgument("unknown poster user id");
  }
  Op op;
  op.kind = Kind::kDocument;
  op.document = std::move(document);
  op.uri = std::move(uri);
  op.user = poster;
  op.assigned = static_cast<uint32_t>(next_doc());
  op.a = static_cast<uint32_t>(next_node());  // global id of node 0
  ++new_docs_;
  new_nodes_ += op.document.NodeCount();
  ops_.push_back(std::move(op));
  return ops_.back().assigned;
}

Status GlobalUpdate::AddComment(doc::DocId comment, doc::NodeId target) {
  if (comment >= next_doc() || target >= next_node()) {
    return Status::InvalidArgument("unknown document or node in AddComment");
  }
  Op op;
  op.kind = Kind::kComment;
  op.a = comment;
  op.b = target;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Result<social::TagId> GlobalUpdate::AddTagOnFragment(social::UserId author,
                                                     doc::NodeId subject,
                                                     KeywordId keyword) {
  if (author >= base_users_) {
    return Status::InvalidArgument("unknown tag author");
  }
  if (subject >= next_node()) {
    return Status::InvalidArgument("unknown tag subject node");
  }
  Op op;
  op.kind = Kind::kTag;
  op.user = author;
  op.a = subject;
  op.b = keyword;
  op.on_tag = false;
  op.assigned = static_cast<uint32_t>(next_tag());
  ++new_tags_;
  ops_.push_back(std::move(op));
  return ops_.back().assigned;
}

Result<social::TagId> GlobalUpdate::AddTagOnTag(social::UserId author,
                                                social::TagId subject,
                                                KeywordId keyword) {
  if (author >= base_users_) {
    return Status::InvalidArgument("unknown tag author");
  }
  if (subject >= next_tag()) {
    return Status::InvalidArgument("unknown subject tag");
  }
  Op op;
  op.kind = Kind::kTag;
  op.user = author;
  op.a = subject;
  op.b = keyword;
  op.on_tag = true;
  op.assigned = static_cast<uint32_t>(next_tag());
  ++new_tags_;
  ops_.push_back(std::move(op));
  return ops_.back().assigned;
}

Status GlobalUpdate::AddSocialEdge(social::UserId from, social::UserId to,
                                   double weight) {
  if (from >= base_users_ || to >= base_users_) {
    return Status::InvalidArgument("unknown user id in social edge");
  }
  if (!(weight > 0.0 && weight <= 1.0)) {
    return Status::InvalidArgument("social edge weight must be in (0,1]");
  }
  Op op;
  op.kind = Kind::kSocial;
  op.user = from;
  op.a = to;
  op.weight = weight;
  ops_.push_back(std::move(op));
  return Status::OK();
}

// ---- construction ---------------------------------------------------------

namespace {

// Non-mutating union-find over a scratch parent vector.
uint32_t Find(std::vector<uint32_t>& parent, uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

Result<std::unique_ptr<ShardRouter>> ShardRouter::Serve(
    PartitionResult partition, ShardRouterOptions options) {
  if (partition.shards.empty()) {
    return Status::InvalidArgument("partition holds no shards");
  }
  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->options_ = options;
  router->user_root_ = std::move(partition.user_root);
  router->n_users_ = router->user_root_.size();
  router->doc_owner_ = std::move(partition.doc_owner);
  router->doc_node_base_ = std::move(partition.doc_node_base);
  router->doc_node_count_.reserve(router->doc_owner_.size());
  for (size_t d = 0; d < router->doc_owner_.size(); ++d) {
    const doc::NodeId next = d + 1 < router->doc_node_base_.size()
                                 ? router->doc_node_base_[d + 1]
                                 : static_cast<doc::NodeId>(partition.n_nodes);
    router->doc_node_count_.push_back(next - router->doc_node_base_[d]);
  }
  router->tag_owner_ = std::move(partition.tag_owner);
  router->n_nodes_ = partition.n_nodes;
  router->n_vocab_ = partition.n_vocab;

  router->home_.resize(router->n_users_);
  router->root_mask_.assign(router->n_users_, 0);
  for (social::UserId u = 0; u < router->n_users_; ++u) {
    router->home_[u] = ShardOfUser(u, partition.shard_count);
    router->root_mask_[router->user_root_[u]] |= uint64_t{1}
                                                 << router->home_[u];
  }

  router->shards_.resize(partition.shards.size());
  for (size_t s = 0; s < partition.shards.size(); ++s) {
    ShardPart& part = partition.shards[s];
    Shard& shard = router->shards_[s];
    shard.index = part.index;
    shard.map = std::move(part.map);
    shard.boundary_social_edges = part.boundary_social_edges;
    shard.owned_users = part.owned_users;
    server::QueryServiceOptions svc = options.service;
    svc.obs_label = "shard" + std::to_string(s);
    shard.service = std::make_unique<server::QueryService>(
        std::move(part.instance), svc);
  }
  router->RegisterMetrics();
  return router;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Open(
    const std::string& root, ShardRouterOptions options) {
  std::string meta_bytes;
  S3_RETURN_IF_ERROR(ReadFileToString(root + "/" + kPartitionMetaFile,
                                      &meta_bytes));
  auto part_meta = ParsePartitionMeta(meta_bytes);
  if (!part_meta.ok()) return part_meta.status();

  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->root_dir_ = root;
  router->options_ = options;
  router->shards_.resize(part_meta->shard_count);

  // Per-shard recovery (snapshot load + WAL-tail replay + meta parse)
  // is independent: fan it out so cold start costs the slowest shard,
  // not the sum. Validation and wiring stay sequential below.
  struct Recovered {
    Status status = Status::OK();
    server::ServerBootstrap boot;
    ShardMetaData meta;
  };
  std::vector<Recovered> recovered(part_meta->shard_count);
  {
    std::vector<std::thread> workers;
    for (uint32_t s = 0; s < part_meta->shard_count; ++s) {
      workers.emplace_back([&, s] {
        Recovered& out = recovered[s];
        server::SnapshotManagerOptions storage;
        storage.dir = ShardDirName(root, s);
        storage.checkpoint_every = options.checkpoint_every;
        storage.background_checkpoints = options.background_checkpoints;
        storage.obs_label = "shard" + std::to_string(s);
        server::QueryServiceOptions svc = options.service;
        svc.obs_label = "shard" + std::to_string(s);
        auto boot = server::RecoverAndServe(storage, svc);
        if (!boot.ok()) {
          out.status = boot.status();
          return;
        }
        out.boot = std::move(*boot);
        std::string shard_meta_bytes;
        Status read = ReadFileToString(storage.dir + "/" + kShardMetaFile,
                                       &shard_meta_bytes);
        if (!read.ok()) {
          out.status = read;
          return;
        }
        auto meta = ParseShardMeta(shard_meta_bytes);
        if (!meta.ok()) {
          out.status = meta.status();
          return;
        }
        out.meta = std::move(*meta);
      });
    }
    for (std::thread& t : workers) t.join();
  }

  for (uint32_t s = 0; s < part_meta->shard_count; ++s) {
    S3_RETURN_IF_ERROR(recovered[s].status);
    server::SnapshotManagerOptions storage;
    storage.dir = ShardDirName(root, s);
    auto boot = Result<server::ServerBootstrap>(std::move(recovered[s].boot));
    auto meta = Result<ShardMetaData>(std::move(recovered[s].meta));
    if (meta->shard_index != s || meta->shard_count != part_meta->shard_count) {
      return Status::InvalidArgument(storage.dir +
                                     ": shard.meta names a different shard");
    }

    auto snapshot = boot->service->snapshot();
    if (meta->map.doc_count() != snapshot->docs().DocumentCount() ||
        meta->map.node_count() != snapshot->docs().NodeCount() ||
        meta->map.tag_count() != snapshot->TagCount()) {
      return Status::InvalidArgument(
          storage.dir +
          ": shard.meta does not cover the recovered population "
          "(crash between LogAndApply and meta rewrite?) — re-split or "
          "restore the metadata");
    }

    Shard& shard = router->shards_[s];
    shard.index = s;
    shard.manager = std::move(boot->manager);
    shard.service = std::move(boot->service);
    shard.map = std::move(meta->map);
    shard.boundary_social_edges = meta->boundary_social_edges;
    shard.owned_users = meta->owned_users;

    if (s == 0) {
      router->n_users_ = snapshot->UserCount();
      router->n_vocab_ = snapshot->vocabulary().size();
    } else if (router->n_users_ != snapshot->UserCount() ||
               router->n_vocab_ != snapshot->vocabulary().size()) {
      return Status::InvalidArgument(
          storage.dir + ": user/keyword tables disagree with shard-000 "
                        "(directories from different partitions?)");
    }
  }

  // Re-derive the group table by unioning the shards' reach
  // partitions (each shard knows the full grouping of the populations
  // it materializes; their union is the global grouping).
  std::vector<uint32_t> parent(router->n_users_);
  for (uint32_t u = 0; u < router->n_users_; ++u) parent[u] = u;
  for (const Shard& shard : router->shards_) {
    auto snapshot = shard.service->snapshot();
    for (social::UserId u = 0; u < router->n_users_; ++u) {
      const uint32_t a = Find(parent, u);
      const uint32_t b = Find(parent, snapshot->ReachRootOfUser(u));
      if (a != b) parent[b] = a;
    }
  }
  router->user_root_.resize(router->n_users_);
  router->home_.resize(router->n_users_);
  router->root_mask_.assign(router->n_users_, 0);
  for (social::UserId u = 0; u < router->n_users_; ++u) {
    router->user_root_[u] = Find(parent, u);
    router->home_[u] = ShardOfUser(u, part_meta->shard_count);
    router->root_mask_[router->user_root_[u]] |= uint64_t{1}
                                                 << router->home_[u];
  }

  // Rebuild the global doc/tag tables from the shard maps (every
  // global entity is materialized on at least one shard).
  uint64_t n_docs = 0, n_tags = 0;
  for (const Shard& shard : router->shards_) {
    if (shard.map.doc_count() > 0) {
      n_docs = std::max<uint64_t>(
          n_docs, shard.map.GlobalDoc(
                      static_cast<doc::DocId>(shard.map.doc_count() - 1)) +
                      uint64_t{1});
    }
    if (shard.map.tag_count() > 0) {
      n_tags = std::max<uint64_t>(
          n_tags, shard.map.GlobalTag(static_cast<social::TagId>(
                      shard.map.tag_count() - 1)) +
                      uint64_t{1});
    }
  }
  router->doc_owner_.assign(n_docs, UINT32_MAX);
  router->doc_node_base_.assign(n_docs, 0);
  router->doc_node_count_.assign(n_docs, 0);
  router->tag_owner_.assign(n_tags, UINT32_MAX);
  router->n_nodes_ = 0;
  for (const Shard& shard : router->shards_) {
    auto snapshot = shard.service->snapshot();
    for (doc::DocId ld = 0; ld < shard.map.doc_count(); ++ld) {
      const doc::DocId gd = shard.map.GlobalDoc(ld);
      router->doc_owner_[gd] = snapshot->PosterOfDoc(ld);
      router->doc_node_base_[gd] = shard.map.GlobalNodeBase(ld);
      router->doc_node_count_[gd] = shard.map.NodeCount(ld);
      router->n_nodes_ =
          std::max<uint64_t>(router->n_nodes_,
                             shard.map.GlobalNodeBase(ld) +
                                 uint64_t{shard.map.NodeCount(ld)});
    }
    for (social::TagId lt = 0; lt < shard.map.tag_count(); ++lt) {
      router->tag_owner_[shard.map.GlobalTag(lt)] =
          snapshot->tags()[lt].author;
    }
  }
  for (uint64_t d = 0; d < n_docs; ++d) {
    if (router->doc_owner_[d] == UINT32_MAX) {
      return Status::InvalidArgument(
          "global document " + std::to_string(d) +
          " is materialized on no shard (missing or mismatched shard "
          "directories)");
    }
  }
  for (uint64_t t = 0; t < n_tags; ++t) {
    if (router->tag_owner_[t] == UINT32_MAX) {
      return Status::InvalidArgument(
          "global tag " + std::to_string(t) +
          " is materialized on no shard (missing or mismatched shard "
          "directories)");
    }
  }
  router->RegisterMetrics();
  return router;
}

void ShardRouter::RegisterMetrics() {
  if constexpr (!obs::kEnabled) return;
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  h_scatter_.resize(shards_.size(), nullptr);
  for (size_t s = 0; s < shards_.size(); ++s) {
    h_scatter_[s] = reg.GetHistogram(
        "s3_scatter_shard_seconds",
        "Per-shard sub-query latency as seen by the router "
        "(admission to completion inside the shard's QueryService)",
        {{"shard", std::to_string(s)}});
  }
  c_pruned_unreachable_ = reg.GetCounter(
      "s3_shards_pruned_total",
      "Shards skipped during scatter, by prune reason",
      {{"reason", "unreachable"}});
  c_pruned_bound_ = reg.GetCounter(
      "s3_shards_pruned_total",
      "Shards skipped during scatter, by prune reason",
      {{"reason", "bound"}});
  c_merge_dedup_ = reg.GetCounter(
      "s3_merge_dedup_total",
      "Result entries dropped by the scatter merge as duplicates of an "
      "already-merged global node (replicated groups answer identically)",
      {});
}

ShardRouter::~ShardRouter() = default;

// ---- queries --------------------------------------------------------------

uint32_t ShardRouter::HomeShardOfUser(social::UserId u) const {
  return home_[u];
}

uint64_t ShardRouter::MaskOfRoot(uint32_t root) const {
  return root_mask_[root];
}

uint64_t ShardRouter::doc_count() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return doc_owner_.size();
}

uint64_t ShardRouter::tag_count() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return tag_owner_.size();
}

std::vector<uint64_t> ShardRouter::Generations() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    out.push_back(shard.service->snapshot()->generation());
  }
  return out;
}

Result<ShardedResponse> ShardRouter::Query(const core::QueryRequest& query) {
  return QueryShards(query, /*scatter=*/false);
}

Result<ShardedResponse> ShardRouter::QueryGlobal(
    const core::QueryRequest& query) {
  return QueryShards(query, /*scatter=*/true);
}

Result<ShardedResponse> ShardRouter::QueryShards(
    const core::QueryRequest& query, bool scatter) {
  if (query.seeker >= n_users_) {
    return Status::InvalidArgument("unknown seeker");
  }
  uint32_t home;
  uint64_t mask;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    home = home_[query.seeker];
    mask = MaskOfRoot(RootOf(query.seeker));
  }

  const uint32_t n_shards = shard_count();
  ShardedResponse resp;
  resp.shards.resize(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) resp.shards[s].shard = s;

  // Fan out through the shards' own worker pools. The home shard is
  // always targeted; a scatter additionally targets every shard
  // materializing the seeker's group. Shards outside the mask hold no
  // social path from the seeker — their best possible score is exactly
  // 0 — so they are pruned before the fan-out (static bound).
  std::vector<std::pair<uint32_t, server::QueryFuture>> futures;
  for (uint32_t s = 0; s < n_shards; ++s) {
    const bool targeted = scatter ? ((mask >> s) & 1) != 0 : s == home;
    if (!targeted) {
      if (scatter) {
        resp.shards[s].pruned_unreachable = true;
        ++resp.shards_pruned;
        if (c_pruned_unreachable_ != nullptr) c_pruned_unreachable_->Inc();
      }
      continue;
    }
    // Load signal: how deep the shard's admission queue already was
    // when this query targeted it (sampled just before submit).
    resp.shards[s].queue_depth = shards_[s].service->queue_depth();
    auto submitted = shards_[s].service->SubmitBlocking(query);
    if (!submitted.ok()) return submitted.status();
    futures.emplace_back(s, std::move(*submitted));
  }

  std::vector<std::pair<uint32_t, server::QueryResponse>> streams;
  streams.reserve(futures.size());
  for (auto& [s, future] : futures) {
    auto response = future.get();
    if (!response.ok()) return response.status();
    resp.shards[s].queried = true;
    resp.shards[s].generation = response->generation;
    resp.shards[s].cache_hit = response->cache_hit;
    // Bound exports for the merge and the global certificate. These
    // are always post-search values: QueryService fills stats from the
    // SearchWithPlan/SearchBatchWithPlan call that answered *this*
    // request — the plan cache holds seeker-independent plans only,
    // never stats — so a cache-hit answer exports exactly what the
    // cold one did (pinned by AnytimeShardTest.CacheHitExports...).
    resp.shards[s].kth_lower = response->stats.kth_lower;
    resp.shards[s].remaining_upper = response->stats.remaining_upper;
    resp.shards[s].certified_epsilon = response->certified_epsilon;
    resp.shards[s].deadline_exceeded = response->deadline_exceeded;
    // A deadline-expired shard degrades the global certificate (its
    // remaining_upper export is looser) instead of failing the query.
    resp.deadline_exceeded =
        resp.deadline_exceeded || response->deadline_exceeded;
    resp.shards[s].entries = response->entries.size();
    resp.shards[s].scatter_seconds = response->total_seconds;
    if (s < h_scatter_.size() && h_scatter_[s] != nullptr) {
      h_scatter_[s]->Observe(response->total_seconds);
    }
    ++resp.shards_queried;
    if (s == home) {
      resp.stats = response->stats;
      resp.cache_hit = response->cache_hit;
    }
    streams.emplace_back(s, std::move(*response));
  }

  // Bound-aware k-heap merge. Streams are processed best-first; once k
  // entries are held, a stream whose best possible score (its top
  // entry's upper, or its remaining-upper export when it returned
  // nothing) is below the merged k-th lower bound cannot contribute
  // and is dropped unread. Duplicates (replicated groups answer
  // identically) dedup by global node id.
  auto best_upper = [](const server::QueryResponse& r) {
    double best = r.stats.remaining_upper;
    if (!r.entries.empty()) best = std::max(best, r.entries.front().upper);
    return best;
  };
  std::sort(streams.begin(), streams.end(),
            [&](const auto& a, const auto& b) {
              const double ba = best_upper(a.second);
              const double bb = best_upper(b.second);
              if (ba != bb) return ba > bb;
              return a.first < b.first;
            });

  // Per-request k (QueryOptions::k == 0 inherits the service default),
  // matching what every shard's QueryService resolved for its lanes.
  const size_t k = query.options.k > 0 ? query.options.k
                                       : options_.service.search.k;
  std::vector<core::ResultEntry> merged;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    double kth_lower = 0.0;
    for (auto& [s, response] : streams) {
      if (merged.size() >= k && best_upper(response) < kth_lower) {
        resp.shards[s].pruned_bound = true;
        ++resp.shards_pruned;
        if (c_pruned_bound_ != nullptr) c_pruned_bound_->Inc();
        continue;
      }
      for (const core::ResultEntry& e : response.entries) {
        auto mapped = shards_[s].map.GlobalNode(e.node);
        if (!mapped.ok()) return mapped.status();
        const doc::NodeId global = *mapped;
        bool duplicate = false;
        for (const core::ResultEntry& have : merged) {
          if (have.node == global) { duplicate = true; break; }
        }
        if (duplicate) {
          if (c_merge_dedup_ != nullptr) c_merge_dedup_->Inc();
        } else {
          merged.push_back(core::ResultEntry{global, e.lower, e.upper});
        }
      }
      std::sort(merged.begin(), merged.end(),
                [](const core::ResultEntry& a, const core::ResultEntry& b) {
                  if (a.upper != b.upper) return a.upper > b.upper;
                  return a.node < b.node;
                });
      if (merged.size() > k) merged.resize(k);
      kth_lower = merged.empty() ? 0.0 : merged.front().lower;
      for (const core::ResultEntry& e : merged) {
        kth_lower = std::min(kth_lower, e.lower);
      }
    }

    // Global certificate: bound every document NOT in the merged
    // top-k. Three sources, all per-shard exports of *this* query's
    // searches: (a) each queried stream's remaining_upper (documents
    // its shard never returned), (b) the best possible score of a
    // bound-pruned stream (read unseen, so its whole stream is
    // "remaining"), and (c) the uppers of returned entries that lost
    // the merge. Unreachable-pruned shards contribute exactly 0 by the
    // static reach argument. A deadline-truncated shard simply exports
    // a looser remaining_upper, degrading certified_epsilon here
    // rather than failing the query.
    resp.kth_lower = kth_lower;
    double global_rem = 0.0;
    for (auto& [s, response] : streams) {
      if (resp.shards[s].pruned_bound) {
        global_rem = std::max(global_rem, best_upper(response));
        continue;
      }
      global_rem = std::max(global_rem, response.stats.remaining_upper);
      for (const core::ResultEntry& e : response.entries) {
        auto mapped = shards_[s].map.GlobalNode(e.node);
        if (!mapped.ok()) return mapped.status();
        bool kept = false;
        for (const core::ResultEntry& have : merged) {
          if (have.node == *mapped) { kept = true; break; }
        }
        if (!kept) global_rem = std::max(global_rem, e.upper);
      }
    }
    resp.remaining_upper = global_rem;
    // Same certificate arithmetic as the engine's finish_lane: the
    // absolute tie-break slack certifies 0 (exact merges whose kth
    // lower bound is 0 must not report infinity off a ~1e-12 tail).
    if (resp.remaining_upper <=
        resp.kth_lower + options_.service.search.epsilon) {
      resp.certified_epsilon = 0.0;
    } else if (resp.kth_lower > 0.0) {
      resp.certified_epsilon =
          std::max(0.0, resp.remaining_upper / resp.kth_lower - 1.0);
    } else {
      resp.certified_epsilon = std::numeric_limits<double>::infinity();
    }
  }
  resp.entries = std::move(merged);

  for (uint32_t s = 0; s < n_shards; ++s) {
    if (!resp.shards[s].queried) {
      resp.shards[s].generation =
          shards_[s].service->snapshot()->generation();
    }
  }
  resp.generations.reserve(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    resp.generations.push_back(resp.shards[s].generation);
  }
  return resp;
}

// ---- updates --------------------------------------------------------------

GlobalUpdate ShardRouter::BeginUpdate() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return GlobalUpdate(n_users_, doc_owner_.size(), n_nodes_,
                      tag_owner_.size(), n_vocab_,
                      shards_[0].service->snapshot());
}

Result<social::UserId> ShardRouter::OwnerOfGlobalNode(
    doc::NodeId node, const std::vector<social::UserId>& pending_doc_owner,
    const std::vector<doc::NodeId>& pending_doc_base,
    const std::vector<uint32_t>& pending_doc_nodes) const {
  if (node < n_nodes_) {
    auto it = std::upper_bound(doc_node_base_.begin(), doc_node_base_.end(),
                               node);
    if (it == doc_node_base_.begin()) {
      return Status::InvalidArgument("unknown node id");
    }
    const size_t d = static_cast<size_t>(it - doc_node_base_.begin()) - 1;
    if (node - doc_node_base_[d] >= doc_node_count_[d]) {
      return Status::InvalidArgument("unknown node id");
    }
    return doc_owner_[d];
  }
  auto it = std::upper_bound(pending_doc_base.begin(),
                             pending_doc_base.end(), node);
  if (it == pending_doc_base.begin()) {
    return Status::InvalidArgument("unknown node id");
  }
  const size_t d = static_cast<size_t>(it - pending_doc_base.begin()) - 1;
  if (node - pending_doc_base[d] >= pending_doc_nodes[d]) {
    return Status::InvalidArgument("unknown node id");
  }
  return pending_doc_owner[d];
}

Status ShardRouter::ApplyUpdate(const GlobalUpdate& update) {
  std::lock_guard<std::mutex> writer(update_mu_);
  if (update.empty()) return Status::OK();

  // Writers are serialized, so reading the routing state without the
  // shared lock is race-free here; the commit below takes it
  // exclusively.
  if (update.base_users_ != n_users_ ||
      update.base_docs_ != doc_owner_.size() ||
      update.base_nodes_ != n_nodes_ ||
      update.base_tags_ != tag_owner_.size() ||
      update.base_vocab_ != n_vocab_) {
    return Status::FailedPrecondition(
        "stale update: the global population advanced since BeginUpdate");
  }

  const uint32_t n_shards = shard_count();
  using Kind = GlobalUpdate::Kind;

  // ---- phase 1: route simulation (no state is mutated) -----------------
  std::vector<uint32_t> scratch_root = user_root_;
  std::vector<uint64_t> scratch_mask = root_mask_;
  std::vector<social::UserId> pending_doc_owner;
  std::vector<doc::NodeId> pending_doc_base;
  std::vector<uint32_t> pending_doc_nodes;
  std::vector<social::UserId> pending_tag_owner;
  std::vector<uint64_t> op_mask(update.ops_.size(), 0);

  auto owner_of_doc = [&](doc::DocId gd) -> Result<social::UserId> {
    if (gd < update.base_docs_) return doc_owner_[gd];
    const size_t i = gd - update.base_docs_;
    if (i >= pending_doc_owner.size()) {
      return Status::InvalidArgument("unknown document id");
    }
    return pending_doc_owner[i];
  };
  auto owner_of_tag = [&](social::TagId gt) -> Result<social::UserId> {
    if (gt < update.base_tags_) return tag_owner_[gt];
    const size_t i = gt - update.base_tags_;
    if (i >= pending_tag_owner.size()) {
      return Status::InvalidArgument("unknown tag id");
    }
    return pending_tag_owner[i];
  };
  // Joins the groups of two users; refuses a join whose groups are
  // materialized on different shard sets — correctness would require
  // shipping one group's population to the other's shards
  // (rebalancing), which the router does not do in place.
  auto join = [&](social::UserId a, social::UserId b) -> Result<uint64_t> {
    const uint32_t ra = Find(scratch_root, a);
    const uint32_t rb = Find(scratch_root, b);
    if (ra == rb) return scratch_mask[ra];
    if (scratch_mask[ra] != scratch_mask[rb]) {
      return Status::FailedPrecondition(
          "update links reach groups materialized on different shard "
          "sets; this requires rebalancing (shipping shard snapshots), "
          "not an in-place delta");
    }
    scratch_root[rb] = ra;
    return scratch_mask[ra];
  };

  for (size_t i = 0; i < update.ops_.size(); ++i) {
    const GlobalUpdate::Op& op = update.ops_[i];
    switch (op.kind) {
      case Kind::kDocument: {
        op_mask[i] = scratch_mask[Find(scratch_root, op.user)];
        pending_doc_owner.push_back(op.user);
        pending_doc_base.push_back(op.a);
        pending_doc_nodes.push_back(
            static_cast<uint32_t>(op.document.NodeCount()));
        break;
      }
      case Kind::kComment: {
        auto a = owner_of_doc(op.a);
        if (!a.ok()) return a.status();
        auto b = OwnerOfGlobalNode(op.b, pending_doc_owner,
                                   pending_doc_base, pending_doc_nodes);
        if (!b.ok()) return b.status();
        auto mask = join(*a, *b);
        if (!mask.ok()) return mask.status();
        op_mask[i] = *mask;
        break;
      }
      case Kind::kTag: {
        Result<social::UserId> subject_owner =
            op.on_tag ? owner_of_tag(op.a)
                      : OwnerOfGlobalNode(op.a, pending_doc_owner,
                                          pending_doc_base,
                                          pending_doc_nodes);
        if (!subject_owner.ok()) return subject_owner.status();
        auto mask = join(op.user, *subject_owner);
        if (!mask.ok()) return mask.status();
        op_mask[i] = *mask;
        pending_tag_owner.push_back(op.user);
        break;
      }
      case Kind::kSocial: {
        auto mask = join(op.user, static_cast<social::UserId>(op.a));
        if (!mask.ok()) return mask.status();
        op_mask[i] = *mask;
        break;
      }
    }
    if (op_mask[i] == 0) {
      return Status::Internal("op routed to no shard");
    }
  }

  // ---- phase 2: build one InstanceDelta per touched shard --------------
  // New spellings go to *every* shard, keeping KeywordIds aligned even
  // on shards the ops miss.
  struct NewDoc {
    doc::DocId global;
    doc::NodeId global_base;
    uint32_t n_nodes;
  };
  struct ShardDelta {
    std::shared_ptr<const core::S3Instance> base;
    std::unique_ptr<core::InstanceDelta> delta;
    std::vector<NewDoc> docs;
    std::vector<social::TagId> tags;  // global ids, in op order
    uint64_t new_boundary_social = 0;
  };
  std::vector<ShardDelta> planned(n_shards);

  for (uint32_t s = 0; s < n_shards; ++s) {
    bool touched = !update.spellings_.empty();
    for (size_t i = 0; i < op_mask.size() && !touched; ++i) {
      touched = ((op_mask[i] >> s) & 1) != 0;
    }
    if (!touched) continue;

    ShardDelta& plan = planned[s];
    plan.base = shards_[s].service->snapshot();
    plan.delta = std::make_unique<core::InstanceDelta>(plan.base);
    for (const std::string& spelling : update.spellings_) {
      plan.delta->InternKeyword(spelling);
    }

    // Local translation helpers over the base map plus this update's
    // own additions to shard s.
    auto local_doc = [&](doc::DocId gd) -> Result<doc::DocId> {
      if (gd < update.base_docs_) return shards_[s].map.LocalDoc(gd);
      for (size_t j = 0; j < plan.docs.size(); ++j) {
        if (plan.docs[j].global == gd) {
          return static_cast<doc::DocId>(plan.base->docs().DocumentCount() +
                                         j);
        }
      }
      return Status::Internal("pending document not routed to this shard");
    };
    doc::NodeId local_node_cursor =
        static_cast<doc::NodeId>(plan.base->docs().NodeCount());
    std::vector<doc::NodeId> pending_local_base;  // parallel to plan.docs
    auto local_node = [&](doc::NodeId gn) -> Result<doc::NodeId> {
      if (gn < update.base_nodes_) return shards_[s].map.LocalNode(gn);
      for (size_t j = 0; j < plan.docs.size(); ++j) {
        if (gn >= plan.docs[j].global_base &&
            gn < plan.docs[j].global_base + plan.docs[j].n_nodes) {
          return pending_local_base[j] + (gn - plan.docs[j].global_base);
        }
      }
      return Status::Internal("pending node not routed to this shard");
    };
    auto local_tag = [&](social::TagId gt) -> Result<social::TagId> {
      if (gt < update.base_tags_) return shards_[s].map.LocalTag(gt);
      for (size_t j = 0; j < plan.tags.size(); ++j) {
        if (plan.tags[j] == gt) {
          return static_cast<social::TagId>(plan.base->TagCount() + j);
        }
      }
      return Status::Internal("pending tag not routed to this shard");
    };

    for (size_t i = 0; i < update.ops_.size(); ++i) {
      if (((op_mask[i] >> s) & 1) == 0) continue;
      const GlobalUpdate::Op& op = update.ops_[i];
      switch (op.kind) {
        case Kind::kDocument: {
          auto added =
              plan.delta->AddDocument(op.document, op.uri, op.user);
          if (!added.ok()) return added.status();
          pending_local_base.push_back(local_node_cursor);
          local_node_cursor +=
              static_cast<doc::NodeId>(op.document.NodeCount());
          plan.docs.push_back(NewDoc{
              op.assigned, op.a,
              static_cast<uint32_t>(op.document.NodeCount())});
          break;
        }
        case Kind::kComment: {
          auto comment = local_doc(op.a);
          if (!comment.ok()) return comment.status();
          auto target = local_node(op.b);
          if (!target.ok()) return target.status();
          S3_RETURN_IF_ERROR(plan.delta->AddComment(*comment, *target));
          break;
        }
        case Kind::kTag: {
          if (op.on_tag) {
            auto subject = local_tag(op.a);
            if (!subject.ok()) return subject.status();
            auto added =
                plan.delta->AddTagOnTag(op.user, *subject, op.b);
            if (!added.ok()) return added.status();
          } else {
            auto subject = local_node(op.a);
            if (!subject.ok()) return subject.status();
            auto added =
                plan.delta->AddTagOnFragment(op.user, *subject, op.b);
            if (!added.ok()) return added.status();
          }
          plan.tags.push_back(op.assigned);
          break;
        }
        case Kind::kSocial: {
          S3_RETURN_IF_ERROR(plan.delta->AddSocialEdge(
              op.user, static_cast<social::UserId>(op.a), op.weight));
          if (home_[op.user] !=
              home_[static_cast<social::UserId>(op.a)]) {
            ++plan.new_boundary_social;
          }
          break;
        }
      }
    }
  }

  // ---- phase 3: commit routing state -----------------------------------
  // BEFORE publishing any new generation: the id maps are append-only
  // and may safely run ahead of the served snapshots (a response from
  // an old generation never contains the new local ids), but a
  // new-generation response translated through a stale map would
  // silently produce wrong global node ids. Group masks never change
  // here (joins require equal masks), so early routing-state commit
  // cannot misroute a concurrent query either.
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    for (social::UserId u = 0; u < n_users_; ++u) {
      user_root_[u] = Find(scratch_root, u);
    }
    root_mask_ = std::move(scratch_mask);
    for (size_t i = 0; i < pending_doc_owner.size(); ++i) {
      doc_owner_.push_back(pending_doc_owner[i]);
      doc_node_base_.push_back(pending_doc_base[i]);
      doc_node_count_.push_back(pending_doc_nodes[i]);
      n_nodes_ += pending_doc_nodes[i];
    }
    for (social::UserId owner : pending_tag_owner) {
      tag_owner_.push_back(owner);
    }
    n_vocab_ += update.spellings_.size();
    for (uint32_t s = 0; s < n_shards; ++s) {
      ShardDelta& plan = planned[s];
      if (plan.delta == nullptr) continue;
      for (const NewDoc& d : plan.docs) {
        shards_[s].map.AddDoc(d.global, d.global_base, d.n_nodes);
      }
      for (social::TagId t : plan.tags) shards_[s].map.AddTag(t);
      shards_[s].boundary_social_edges += plan.new_boundary_social;
    }
  }

  // ---- phase 4: apply — each shard logs and swaps its own successor ----
  // The per-shard LogAndApply/SwapSnapshot pairs are independent, so
  // they run concurrently: a batch touching every shard pays the
  // slowest shard's apply, not the sum. Application is not atomic
  // across shards: a failure leaves the other shards on the new
  // generation (their WALs are consistent) and the routing maps ahead
  // of the failed shard — later deltas referencing the unapplied
  // population fail that shard's validating InstanceDelta build, so
  // the inconsistency surfaces as errors, never as silent
  // mis-answers.
  {
    std::vector<Status> apply_status(n_shards, Status::OK());
    std::vector<std::thread> appliers;
    for (uint32_t s = 0; s < n_shards; ++s) {
      if (planned[s].delta == nullptr) continue;
      appliers.emplace_back([this, s, &planned, &apply_status] {
        ShardDelta& plan = planned[s];
        Result<std::shared_ptr<const core::S3Instance>> next =
            shards_[s].manager != nullptr
                ? shards_[s].manager->LogAndApply(*plan.delta)
                : plan.base->ApplyDelta(*plan.delta);
        if (!next.ok()) {
          apply_status[s] = next.status();
          return;
        }
        apply_status[s] = shards_[s].service->SwapSnapshot(*next);
      });
    }
    for (std::thread& t : appliers) t.join();
    for (uint32_t s = 0; s < n_shards; ++s) {
      if (!apply_status[s].ok()) {
        return Status::Internal(
            "update partially applied: shard " + std::to_string(s) +
            " failed (" + apply_status[s].ToString() +
            "); other shards already advanced");
      }
    }
  }

  // ---- phase 5: persist metadata (storage-backed deployments) ----------
  if (!root_dir_.empty()) {
    for (uint32_t s = 0; s < n_shards; ++s) {
      if (planned[s].delta == nullptr) continue;
      S3_RETURN_IF_ERROR(PersistShardMeta(shards_[s]));
    }
  }
  return Status::OK();
}

Status ShardRouter::PersistShardMeta(const Shard& shard) {
  ShardMetaData meta;
  meta.shard_index = shard.index;
  meta.shard_count = shard_count();
  meta.boundary_social_edges = shard.boundary_social_edges;
  meta.owned_users = shard.owned_users;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    meta.map = shard.map;
  }
  return WriteFileAtomic(
      ShardDirName(root_dir_, shard.index) + "/" + kShardMetaFile,
      EncodeShardMeta(meta));
}

}  // namespace s3::shard
