// Durable metadata of a sharded deployment.
//
// A sharded deployment on disk is a root directory of per-shard
// storage directories (each one a normal SnapshotManager directory —
// binary snapshot + delta WAL) plus two small text files:
//
//   <root>/partition.meta        shard count + partition-wide stats
//   <root>/shard-NNN/shard.meta  shard index, boundary-edge count and
//                                the local<->global id map (one D line
//                                per document, one T line per tag, in
//                                local id order)
//
// shard.meta is rewritten (atomically) by the router after every
// applied update, so the maps always describe the serving state the
// WAL recovers to. The user->group table is NOT persisted: it is a
// pure function of the shard populations and is re-derived on Open by
// unioning the shards' reach partitions.
//
// Line format (all integers decimal, '#' starts a comment):
//   S3SHARD v1
//   shard <index> <count>
//   boundary <social edges with cross-home endpoints>
//   owned_users <n>
//   D <global doc> <global first node> <node count>
//   T <global tag>
//
//   S3PART v1
//   shards <count>
//   boundary <population-wide cross-home social edges>
#ifndef S3_SHARD_SHARD_META_H_
#define S3_SHARD_SHARD_META_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "shard/partitioner.h"

namespace s3::shard {

inline constexpr char kShardMetaFile[] = "shard.meta";
inline constexpr char kPartitionMetaFile[] = "partition.meta";

struct ShardMetaData {
  uint32_t shard_index = 0;
  uint32_t shard_count = 0;
  uint64_t boundary_social_edges = 0;
  uint32_t owned_users = 0;
  ShardMap map;
};

struct PartitionMetaData {
  uint32_t shard_count = 0;
  uint64_t boundary_social_edges = 0;
};

std::string EncodeShardMeta(const ShardMetaData& meta);
Result<ShardMetaData> ParseShardMeta(std::string_view text);

std::string EncodePartitionMeta(const PartitionMetaData& meta);
Result<PartitionMetaData> ParsePartitionMeta(std::string_view text);

// <root>/shard-NNN
std::string ShardDirName(const std::string& root, uint32_t index);

// Materializes a partition as a storage deployment: creates the root,
// initializes one SnapshotManager directory per shard (binary
// snapshot of the shard instance at its current generation) and writes
// both meta files. The root must not already contain a deployment.
Status WritePartition(const PartitionResult& partition,
                      const std::string& root);

}  // namespace s3::shard

#endif  // S3_SHARD_SHARD_META_H_
