#include "shard/partitioner.h"

#include <algorithm>

#include "social/edge_store.h"

namespace s3::shard {

using social::EdgeLabel;
using social::EntityId;
using social::EntityKind;

uint64_t StableUserHash(social::UserId u) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (int shift = 0; shift < 32; shift += 8) {
    h ^= (static_cast<uint64_t>(u) >> shift) & 0xffu;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint32_t ShardOfUser(social::UserId u, uint32_t shard_count) {
  return static_cast<uint32_t>(StableUserHash(u) % shard_count);
}

void ShardMap::AddDoc(doc::DocId global_doc, doc::NodeId global_node_base,
                      uint32_t n_nodes) {
  const doc::NodeId local_base =
      node_base_local_.empty()
          ? 0
          : node_base_local_.back() + node_count_.back();
  doc_global_.push_back(global_doc);
  node_base_global_.push_back(global_node_base);
  node_count_.push_back(n_nodes);
  node_base_local_.push_back(local_base);
}

void ShardMap::AddTag(social::TagId global_tag) {
  tag_global_.push_back(global_tag);
}

Result<doc::NodeId> ShardMap::GlobalNode(doc::NodeId local) const {
  // Owning local doc: last entry with node_base_local_ <= local.
  auto it = std::upper_bound(node_base_local_.begin(),
                             node_base_local_.end(), local);
  if (it == node_base_local_.begin()) {
    return Status::Internal("local node beyond the mapped range");
  }
  const size_t d = static_cast<size_t>(it - node_base_local_.begin()) - 1;
  if (local - node_base_local_[d] >= node_count_[d]) {
    return Status::Internal("local node beyond the mapped range");
  }
  return node_base_global_[d] + (local - node_base_local_[d]);
}

Result<doc::DocId> ShardMap::LocalDoc(doc::DocId global) const {
  auto it = std::lower_bound(doc_global_.begin(), doc_global_.end(), global);
  if (it == doc_global_.end() || *it != global) {
    return Status::NotFound("document not materialized on this shard");
  }
  return static_cast<doc::DocId>(it - doc_global_.begin());
}

Result<doc::NodeId> ShardMap::LocalNode(doc::NodeId global) const {
  auto it = std::upper_bound(node_base_global_.begin(),
                             node_base_global_.end(), global);
  if (it == node_base_global_.begin()) {
    return Status::NotFound("node not materialized on this shard");
  }
  const size_t d = static_cast<size_t>(it - node_base_global_.begin()) - 1;
  const doc::NodeId offset = global - node_base_global_[d];
  if (offset >= node_count_[d]) {
    return Status::NotFound("node not materialized on this shard");
  }
  return node_base_local_[d] + offset;
}

Result<social::TagId> ShardMap::LocalTag(social::TagId global) const {
  auto it = std::lower_bound(tag_global_.begin(), tag_global_.end(), global);
  if (it == tag_global_.end() || *it != global) {
    return Status::NotFound("tag not materialized on this shard");
  }
  return static_cast<social::TagId>(it - tag_global_.begin());
}

namespace {

// Reconstructs a document as a population-API replay source: same node
// order, names, parents and keyword bags as the registered original
// (ids are reassigned by the target store).
doc::Document CopyDocument(const doc::Document& src) {
  doc::Document out(src.node(0).name);
  out.AddKeywords(0, src.node(0).keywords);
  for (uint32_t local = 1; local < src.NodeCount(); ++local) {
    const doc::Node& n = src.node(local);
    out.AddChild(n.parent, n.name);
    out.AddKeywords(local, n.keywords);
  }
  return out;
}

}  // namespace

Result<PartitionResult> Partition(const core::S3Instance& full,
                                  const PartitionOptions& options) {
  if (!full.finalized()) {
    return Status::FailedPrecondition("partition requires a finalized instance");
  }
  if (options.shard_count < 1 || options.shard_count > 64) {
    return Status::InvalidArgument("shard count must be in [1, 64]");
  }
  const uint32_t n_shards = options.shard_count;
  const uint32_t n_users = static_cast<uint32_t>(full.UserCount());

  PartitionResult out;
  out.shard_count = n_shards;
  out.n_nodes = full.docs().NodeCount();
  out.n_vocab = full.vocabulary().size();

  // Group materialization masks: a group lives on the home shard of
  // each of its members.
  out.user_root.resize(n_users);
  std::vector<uint32_t> home(n_users);
  std::vector<uint64_t> root_mask(n_users, 0);  // indexed by root
  for (social::UserId u = 0; u < n_users; ++u) {
    out.user_root[u] = full.ReachRootOfUser(u);
    home[u] = ShardOfUser(u, n_shards);
    root_mask[out.user_root[u]] |= uint64_t{1} << home[u];
  }

  // Global population tables for the router.
  out.doc_owner.reserve(full.docs().DocumentCount());
  out.doc_node_base.reserve(full.docs().DocumentCount());
  for (doc::DocId d = 0; d < full.docs().DocumentCount(); ++d) {
    out.doc_owner.push_back(full.PosterOfDoc(d));
    out.doc_node_base.push_back(full.docs().GlobalId(d, 0));
  }
  out.tag_owner.reserve(full.TagCount());
  for (const core::Tag& t : full.tags()) out.tag_owner.push_back(t.author);

  // The replayable population prefix of the edge log: everything
  // Finalize appended (RDF-imported social edges) is re-derived by each
  // shard's own Finalize from the replicated ontology.
  const uint32_t n_pop_edges =
      static_cast<uint32_t>(full.edges().size() - full.rdf_social_edges());

  for (const core::S3Instance::ExplicitSocialEdge& e :
       full.explicit_social_edges()) {
    if (home[e.from] != home[e.to]) ++out.boundary_social_edges;
  }

  out.shards.resize(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    ShardPart& part = out.shards[s];
    part.index = s;

    auto inst = std::make_shared<core::S3Instance>();

    // Users and keywords replicate in global id order, keeping
    // UserId / KeywordId shard-invariant.
    for (const core::User& u : full.users()) inst->AddUser(u.uri);
    for (KeywordId k = 0; k < full.vocabulary().size(); ++k) {
      inst->InternKeyword(full.vocabulary().Spelling(k));
    }

    // Ontology: replicate the (already saturated) RDF graph wholesale,
    // preserving triple order — the shard's Finalize re-saturates (a
    // no-op on a closed graph) and re-imports RDF-declared social
    // edges in the same order as the source instance did.
    std::vector<rdf::TermId> term_map(full.terms().size());
    for (rdf::TermId t = 0; t < full.terms().size(); ++t) {
      term_map[t] = inst->terms().Intern(full.terms().Text(t),
                                         full.terms().Kind(t));
    }
    for (const rdf::Triple& t : full.rdf_graph().triples()) {
      inst->rdf_graph().Add(term_map[t.subject], term_map[t.property],
                            term_map[t.object], t.weight);
    }

    auto materialized = [&](social::UserId owner) {
      return (root_mask[out.user_root[owner]] >> s) & 1;
    };

    // Replay the population in original op order, recovered from the
    // edge log (each population op leaves a distinctive edge
    // signature; inverse twins are skipped).
    for (uint32_t idx = 0; idx < n_pop_edges; ++idx) {
      const social::NetEdge& e = full.edges().edge(idx);
      switch (e.label) {
        case EdgeLabel::kSocial: {
          const social::UserId from = e.source.index();
          const social::UserId to = e.target.index();
          if (!materialized(from)) break;
          S3_RETURN_IF_ERROR(inst->AddSocialEdge(from, to, e.weight));
          if (home[from] != home[to]) ++part.boundary_social_edges;
          break;
        }
        case EdgeLabel::kPostedBy: {
          const doc::DocId d = full.docs().DocOf(e.source.index());
          const social::UserId poster = e.target.index();
          if (!materialized(poster)) break;
          auto added = inst->AddDocument(
              CopyDocument(full.docs().document(d)),
              full.docs().Uri(full.docs().RootNode(d)), poster);
          if (!added.ok()) return added.status();
          part.map.AddDoc(d, full.docs().GlobalId(d, 0),
                          static_cast<uint32_t>(
                              full.docs().document(d).NodeCount()));
          break;
        }
        case EdgeLabel::kCommentsOn: {
          const doc::DocId comment = full.docs().DocOf(e.source.index());
          if (!materialized(full.PosterOfDoc(comment))) break;
          auto local_doc = part.map.LocalDoc(comment);
          auto local_target = part.map.LocalNode(e.target.index());
          if (!local_doc.ok()) return local_doc.status();
          if (!local_target.ok()) return local_target.status();
          S3_RETURN_IF_ERROR(inst->AddComment(*local_doc, *local_target));
          break;
        }
        case EdgeLabel::kHasSubject: {
          const social::TagId t = e.source.index();
          const core::Tag& tag = full.tags()[t];
          if (!materialized(tag.author)) break;
          if (tag.subject.kind() == EntityKind::kFragment) {
            auto local_node = part.map.LocalNode(tag.subject.index());
            if (!local_node.ok()) return local_node.status();
            auto added = inst->AddTagOnFragment(tag.author, *local_node,
                                                tag.keyword);
            if (!added.ok()) return added.status();
          } else {
            auto local_tag = part.map.LocalTag(tag.subject.index());
            if (!local_tag.ok()) return local_tag.status();
            auto added =
                inst->AddTagOnTag(tag.author, *local_tag, tag.keyword);
            if (!added.ok()) return added.status();
          }
          part.map.AddTag(t);
          break;
        }
        default:
          break;  // inverse twins / hasAuthor: emitted by their op
      }
    }

    S3_RETURN_IF_ERROR(inst->Finalize());
    part.instance = std::move(inst);

    for (social::UserId u = 0; u < n_users; ++u) {
      if (home[u] == s) ++part.owned_users;
    }
    for (uint32_t root = 0; root < n_users; ++root) {
      if (out.user_root[root] == root && ((root_mask[root] >> s) & 1)) {
        ++part.materialized_groups;
      }
    }
  }

  return out;
}

}  // namespace s3::shard
