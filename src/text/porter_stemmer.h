// Classic Porter stemming algorithm (M.F. Porter, "An algorithm for
// suffix stripping", Program 14(3), 1980).
//
// The S3 data model (paper §2) defines the keyword set K as URIs plus
// the *stemmed* versions of all literals; e.g. "graduation" and
// "graduates" both map to the same keyword as "graduate". This is the
// stemmer used by the document ingestion pipeline and by query parsing,
// so that query keywords and document keywords meet in the same space.
#ifndef S3_TEXT_PORTER_STEMMER_H_
#define S3_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace s3 {

// Stems a single lowercase ASCII word. Words of length <= 2 are
// returned unchanged, per the original algorithm.
std::string PorterStem(std::string_view word);

}  // namespace s3

#endif  // S3_TEXT_PORTER_STEMMER_H_
