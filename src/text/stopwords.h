// English stop-word filtering for the document ingestion pipeline
// (paper §2.3: "stop words have been removed").
#ifndef S3_TEXT_STOPWORDS_H_
#define S3_TEXT_STOPWORDS_H_

#include <string_view>

namespace s3 {

// True if `word` (lowercase ASCII) is a stop word.
bool IsStopWord(std::string_view word);

// Number of words in the built-in stop list (exposed for tests).
size_t StopWordCount();

}  // namespace s3

#endif  // S3_TEXT_STOPWORDS_H_
