// Text -> keyword pipeline: tokenize, lowercase, drop stop words, stem.
//
// This implements the paper's §2.3 content model: "each text appearing
// in a document has been broken into words, stop words have been
// removed, and the remaining words have been stemmed".
#ifndef S3_TEXT_TOKENIZER_H_
#define S3_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace s3 {

struct TokenizerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  bool stem = true;
  // Tokens shorter than this (after stemming) are dropped.
  size_t min_token_length = 1;
};

// Splits `text` into word tokens (runs of [A-Za-z0-9_#@'] characters;
// '#' and '@' are kept word-initial so hashtags and mentions survive,
// apostrophes are stripped).
std::vector<std::string> TokenizeWords(std::string_view text);

// Full pipeline: tokenize + lowercase + stopword-filter + Porter stem.
std::vector<std::string> ExtractKeywords(
    std::string_view text, const TokenizerOptions& options = {});

}  // namespace s3

#endif  // S3_TEXT_TOKENIZER_H_
