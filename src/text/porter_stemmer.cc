#include "text/porter_stemmer.h"

#include <cstddef>

namespace s3 {

namespace {

// The implementation follows Porter's original description: a word is
// [C](VC)^m[V]; each step conditionally strips or rewrites a suffix.
// We operate on a mutable std::string `w` with an explicit end index.

bool IsVowelAt(const std::string& w, size_t i) {
  char c = w[i];
  if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') return true;
  // 'y' is a vowel when preceded by a consonant.
  if (c == 'y' && i > 0) return !IsVowelAt(w, i - 1);
  return false;
}

// Measure m of w[0..end): the number of VC sequences.
int Measure(const std::string& w, size_t end) {
  int m = 0;
  size_t i = 0;
  // Skip initial consonants.
  while (i < end && !IsVowelAt(w, i)) ++i;
  while (i < end) {
    // In a vowel run.
    while (i < end && IsVowelAt(w, i)) ++i;
    if (i >= end) break;
    // In a consonant run => one VC found.
    ++m;
    while (i < end && !IsVowelAt(w, i)) ++i;
  }
  return m;
}

bool ContainsVowel(const std::string& w, size_t end) {
  for (size_t i = 0; i < end; ++i) {
    if (IsVowelAt(w, i)) return true;
  }
  return false;
}

bool EndsWithDoubleConsonant(const std::string& w, size_t end) {
  if (end < 2) return false;
  if (w[end - 1] != w[end - 2]) return false;
  return !IsVowelAt(w, end - 1);
}

// *o condition: stem ends cvc where the final c is not w, x or y.
bool EndsCvc(const std::string& w, size_t end) {
  if (end < 3) return false;
  if (IsVowelAt(w, end - 3) || !IsVowelAt(w, end - 2) ||
      IsVowelAt(w, end - 1)) {
    return false;
  }
  char c = w[end - 1];
  return c != 'w' && c != 'x' && c != 'y';
}

bool EndsWith(const std::string& w, size_t end, std::string_view suffix) {
  if (end < suffix.size()) return false;
  return std::string_view(w.data() + end - suffix.size(), suffix.size()) ==
         suffix;
}

// Replaces `suffix` (must be present) with `repl` if the measure of the
// remaining stem satisfies m > threshold. Returns true if replaced.
bool ReplaceIfMeasure(std::string& w, size_t& end, std::string_view suffix,
                      std::string_view repl, int threshold) {
  size_t stem_end = end - suffix.size();
  if (Measure(w, stem_end) > threshold) {
    w.replace(stem_end, end - stem_end, repl);
    end = stem_end + repl.size();
    return true;
  }
  return false;
}

void Step1a(std::string& w, size_t& end) {
  if (EndsWith(w, end, "sses")) {
    end -= 2;  // sses -> ss
  } else if (EndsWith(w, end, "ies")) {
    end -= 2;  // ies -> i
  } else if (EndsWith(w, end, "ss")) {
    // unchanged
  } else if (EndsWith(w, end, "s")) {
    end -= 1;  // s -> ""
  }
}

void Step1b(std::string& w, size_t& end) {
  bool second_third = false;
  if (EndsWith(w, end, "eed")) {
    if (Measure(w, end - 3) > 0) end -= 1;  // eed -> ee
  } else if (EndsWith(w, end, "ed") && ContainsVowel(w, end - 2)) {
    end -= 2;
    second_third = true;
  } else if (EndsWith(w, end, "ing") && ContainsVowel(w, end - 3)) {
    end -= 3;
    second_third = true;
  }
  if (!second_third) return;
  if (EndsWith(w, end, "at") || EndsWith(w, end, "bl") ||
      EndsWith(w, end, "iz")) {
    w.resize(end);
    w.push_back('e');
    end += 1;
  } else if (EndsWithDoubleConsonant(w, end)) {
    char c = w[end - 1];
    if (c != 'l' && c != 's' && c != 'z') end -= 1;
  } else if (Measure(w, end) == 1 && EndsCvc(w, end)) {
    w.resize(end);
    w.push_back('e');
    end += 1;
  }
}

void Step1c(std::string& w, size_t& end) {
  if (EndsWith(w, end, "y") && ContainsVowel(w, end - 1)) {
    w[end - 1] = 'i';
  }
}

struct SuffixRule {
  std::string_view suffix;
  std::string_view repl;
};

void ApplyRuleTable(std::string& w, size_t& end, const SuffixRule* rules,
                    size_t n_rules, int threshold) {
  for (size_t i = 0; i < n_rules; ++i) {
    if (EndsWith(w, end, rules[i].suffix)) {
      ReplaceIfMeasure(w, end, rules[i].suffix, rules[i].repl, threshold);
      return;  // at most one rule fires, keyed on the longest match order
    }
  }
}

void Step2(std::string& w, size_t& end) {
  static constexpr SuffixRule kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  };
  // Match the longest applicable suffix first.
  size_t best = SIZE_MAX;
  size_t best_len = 0;
  for (size_t i = 0; i < std::size(kRules); ++i) {
    if (EndsWith(w, end, kRules[i].suffix) &&
        kRules[i].suffix.size() > best_len) {
      best = i;
      best_len = kRules[i].suffix.size();
    }
  }
  if (best != SIZE_MAX) {
    ReplaceIfMeasure(w, end, kRules[best].suffix, kRules[best].repl, 0);
  }
}

void Step3(std::string& w, size_t& end) {
  static constexpr SuffixRule kRules[] = {
      {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},   {"ness", ""},
  };
  ApplyRuleTable(w, end, kRules, std::size(kRules), 0);
}

void Step4(std::string& w, size_t& end) {
  static constexpr std::string_view kSuffixes[] = {
      "al",  "ance", "ence", "er",  "ic",  "able", "ible", "ant",
      "ement", "ment", "ent", "ou", "ism", "ate",  "iti",  "ous",
      "ive", "ize",
  };
  // Longest match first.
  size_t best = SIZE_MAX;
  size_t best_len = 0;
  for (size_t i = 0; i < std::size(kSuffixes); ++i) {
    if (EndsWith(w, end, kSuffixes[i]) && kSuffixes[i].size() > best_len) {
      best = i;
      best_len = kSuffixes[i].size();
    }
  }
  if (best == SIZE_MAX) {
    // "ion" requires the stem to end in s or t.
    if (EndsWith(w, end, "ion")) {
      size_t stem_end = end - 3;
      if (stem_end > 0 && (w[stem_end - 1] == 's' || w[stem_end - 1] == 't') &&
          Measure(w, stem_end) > 1) {
        end = stem_end;
      }
    }
    return;
  }
  std::string_view suffix = kSuffixes[best];
  size_t stem_end = end - suffix.size();
  if (Measure(w, stem_end) > 1) end = stem_end;
}

void Step5a(std::string& w, size_t& end) {
  if (!EndsWith(w, end, "e")) return;
  int m = Measure(w, end - 1);
  if (m > 1 || (m == 1 && !EndsCvc(w, end - 1))) end -= 1;
}

void Step5b(std::string& w, size_t& end) {
  if (end >= 2 && w[end - 1] == 'l' && w[end - 2] == 'l' &&
      Measure(w, end) > 1) {
    end -= 1;
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  std::string w(word);
  size_t end = w.size();
  Step1a(w, end);
  Step1b(w, end);
  Step1c(w, end);
  Step2(w, end);
  Step3(w, end);
  Step4(w, end);
  Step5a(w, end);
  Step5b(w, end);
  w.resize(end);
  return w;
}

}  // namespace s3
