// Keyword interning: maps keyword strings (stemmed words and URIs,
// paper's set K) to dense integer ids used throughout the engine.
#ifndef S3_TEXT_VOCABULARY_H_
#define S3_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace s3 {

// Dense id of an interned keyword.
using KeywordId = uint32_t;
inline constexpr KeywordId kInvalidKeyword = UINT32_MAX;

// Append-only string interner. Ids are assigned densely from 0 in
// insertion order; lookups never invalidate ids.
class Vocabulary {
 public:
  // Returns the id of `keyword`, interning it if new.
  KeywordId Intern(std::string_view keyword);

  // Returns the id of `keyword` or kInvalidKeyword if absent.
  KeywordId Find(std::string_view keyword) const;

  // Precondition: id < size().
  const std::string& Spelling(KeywordId id) const;

  size_t size() const { return spellings_.size(); }

 private:
  std::unordered_map<std::string, KeywordId> index_;
  std::vector<std::string> spellings_;
};

}  // namespace s3

#endif  // S3_TEXT_VOCABULARY_H_
