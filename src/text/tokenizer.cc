#include "text/tokenizer.h"

#include <cctype>

#include "common/str_util.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace s3 {

namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '_' || c == '\'';
}

bool IsWordStart(char c) { return IsWordChar(c) || c == '#' || c == '@'; }

}  // namespace

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (!IsWordStart(text[i])) {
      ++i;
      continue;
    }
    std::string token;
    if (text[i] == '#' || text[i] == '@') {
      token.push_back(text[i]);
      ++i;
    }
    while (i < text.size() && IsWordChar(text[i])) {
      if (text[i] != '\'') token.push_back(text[i]);
      ++i;
    }
    // A lone '#'/'@' is punctuation, not a token.
    if (!token.empty() && !(token.size() == 1 &&
                            (token[0] == '#' || token[0] == '@'))) {
      tokens.push_back(std::move(token));
    }
  }
  return tokens;
}

std::vector<std::string> ExtractKeywords(std::string_view text,
                                         const TokenizerOptions& options) {
  std::vector<std::string> keywords;
  for (std::string& token : TokenizeWords(text)) {
    std::string word =
        options.lowercase ? ToLowerAscii(token) : std::move(token);
    // Hashtags/mentions bypass stop-word filtering and stemming: they
    // are identifiers, not English words.
    bool is_symbol = !word.empty() && (word[0] == '#' || word[0] == '@');
    if (!is_symbol) {
      if (options.remove_stopwords && IsStopWord(word)) continue;
      if (options.stem) word = PorterStem(word);
    }
    if (word.size() < options.min_token_length) continue;
    keywords.push_back(std::move(word));
  }
  return keywords;
}

}  // namespace s3
