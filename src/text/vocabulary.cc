#include "text/vocabulary.h"

#include <cassert>

namespace s3 {

KeywordId Vocabulary::Intern(std::string_view keyword) {
  auto it = index_.find(std::string(keyword));
  if (it != index_.end()) return it->second;
  KeywordId id = static_cast<KeywordId>(spellings_.size());
  spellings_.emplace_back(keyword);
  index_.emplace(spellings_.back(), id);
  return id;
}

KeywordId Vocabulary::Find(std::string_view keyword) const {
  auto it = index_.find(std::string(keyword));
  return it == index_.end() ? kInvalidKeyword : it->second;
}

const std::string& Vocabulary::Spelling(KeywordId id) const {
  assert(id < spellings_.size());
  return spellings_[id];
}

}  // namespace s3
